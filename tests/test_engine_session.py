"""Tests for the execution-engine protocol, run limits, decode-cache
invalidation and the batched session layer."""

import pytest

from repro.common.config import VortexConfig
from repro.core.emulator import EmulationError, SimulationLimitExceeded
from repro.engine.protocol import ExecutionEngine
from repro.engine.session import (
    BatchReport,
    JobQueue,
    KernelJob,
    Session,
    design_point_jobs,
    execute_job,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.kernels import VecAddKernel
from repro.runtime.device import VortexDevice
from repro.runtime.funcsim import FuncSimDriver
from repro.runtime.simx import SimxDriver

BASE = 0x8000_0000


# -- execution-engine protocol -----------------------------------------------------------


@pytest.mark.parametrize("driver_cls", [FuncSimDriver, SimxDriver])
def test_drivers_implement_the_engine_protocol(driver_cls):
    driver = driver_cls(VortexConfig())
    assert isinstance(driver, ExecutionEngine)


def test_funcsim_rejects_unknown_engine():
    with pytest.raises(ValueError):
        FuncSimDriver(VortexConfig(), engine="quantum")


# -- unified run-limit handling ----------------------------------------------------------


def _infinite_loop_program():
    asm = ProgramBuilder(base=BASE)
    asm.label("spin")
    asm.j("spin")
    return asm.assemble()


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_funcsim_instruction_limit_raises_typed_error(engine):
    driver = FuncSimDriver(VortexConfig(), engine=engine)
    program = _infinite_loop_program()
    driver.memory.load_words(program.base, program.words)
    with pytest.raises(SimulationLimitExceeded) as excinfo:
        driver.run(program.entry, max_instructions=500)
    assert excinfo.value.kind == "instructions"
    assert excinfo.value.limit == 500
    # Backwards compatible: still an EmulationError.
    assert isinstance(excinfo.value, EmulationError)


def test_simx_cycle_limit_raises_typed_error():
    driver = SimxDriver(VortexConfig())
    program = _infinite_loop_program()
    driver.memory.load_words(program.base, program.words)
    with pytest.raises(SimulationLimitExceeded) as excinfo:
        driver.run(program.entry, max_cycles=500)
    assert excinfo.value.kind == "cycles"
    assert excinfo.value.limit == 500


# -- decode-cache invalidation -----------------------------------------------------------


def _constant_store_program(value):
    """Store ``value`` to 0x4000 from warp 0 / thread 0, then halt."""
    asm = ProgramBuilder(base=BASE)
    asm.li(Reg.t0, value)
    asm.li(Reg.t1, 0x4000)
    asm.sw(Reg.t0, 0, Reg.t1)
    asm.li(Reg.t2, 0)
    asm.tmc(Reg.t2)
    return asm.assemble()  # entry defaults to the image base


@pytest.mark.parametrize(
    "driver", ["funcsim", "funcsim:engine=scalar", "simx", "simx:engine=scalar"]
)
def test_back_to_back_program_loads_use_fresh_decodes(driver):
    """Loading a second image at the same base must not execute stale decodes."""
    device = VortexDevice(VortexConfig(), driver=driver)
    first = _constant_store_program(111)
    second = _constant_store_program(222)
    assert first.base == second.base

    device.upload_program(first)
    device.launch(first.entry)
    assert device.memory.read_word(0x4000) == 111

    device.upload_program(second)
    device.launch(second.entry)
    assert device.memory.read_word(0x4000) == 222


def test_upload_program_invalidates_driver_decode_caches():
    device = VortexDevice(VortexConfig(), driver="funcsim")
    program = _constant_store_program(7)
    device.upload_program(program)
    device.launch(program.entry)
    core = device.driver.processor.cores[0]
    assert core.emulator._decode_cache  # warm after a run
    device.upload_program(_constant_store_program(8))
    assert not core.emulator._decode_cache
    assert all(not warp.plan_cache for warp in core.warps)


def test_upload_program_invalidates_timing_plan_caches():
    """The vectorized SIMX core compiles per-PC timing plans; a new program
    image at the same base must drop them (and the hazard-register cache)."""
    device = VortexDevice(VortexConfig(), driver="simx")
    program = _constant_store_program(7)
    device.upload_program(program)
    device.launch(program.entry)
    core = device.driver.processor.cores[0]
    assert core.func.emulator._decode_cache
    assert any(warp.timing_plan_cache for warp in core.func.warps)
    assert core._registers_by_pc
    device.upload_program(_constant_store_program(8))
    assert not core.func.emulator._decode_cache
    assert all(not warp.timing_plan_cache for warp in core.func.warps)
    assert all(not warp.plan_cache for warp in core.func.warps)
    assert not core._registers_by_pc


# -- execution reports -------------------------------------------------------------------


def test_reports_carry_wall_clock_and_rates():
    device = VortexDevice(VortexConfig(), driver="funcsim")
    run = VecAddKernel().run(device, size=64)
    report = run.report
    assert report.wall_seconds > 0.0
    assert report.instructions_per_second > 0.0
    assert report.thread_instructions_per_second >= report.instructions_per_second
    assert report.engine == "vector"
    assert "instr/s" in report.summary()


def test_scalar_engine_report_is_labelled():
    device = VortexDevice(VortexConfig(), driver="funcsim:engine=scalar")
    run = VecAddKernel().run(device, size=32)
    assert run.report.engine == "scalar"
    assert run.report.driver == "funcsim"


# -- session / job queue -----------------------------------------------------------------


def test_job_queue_fifo_and_drain():
    queue = JobQueue([KernelJob(kernel="vecadd")])
    queue.add(KernelJob(kernel="saxpy"))
    queue.extend([KernelJob(kernel="sgemm")])
    assert len(queue) == 3
    drained = queue.drain()
    assert [job.kernel for job in drained] == ["vecadd", "saxpy", "sgemm"]
    assert len(queue) == 0


def test_execute_job_reports_errors_instead_of_raising():
    result = execute_job(KernelJob(kernel="no-such-kernel"))
    assert not result.ok
    assert result.error is not None
    assert "KeyError" in result.error
    # The exception type is preserved machine-readably so retry policies can
    # classify the failure without parsing the message.
    assert result.error_type == "KeyError"


def test_job_result_payload_round_trips_through_execution_report():
    result = execute_job(KernelJob(kernel="vecadd", driver="funcsim", size=32))
    payload = result.to_payload()
    assert payload["ok"] is True
    assert payload["error"] is None and payload["error_type"] is None
    assert payload["attempts"] == 1 and payload["cached"] is False
    assert payload["report"] == result.report.to_payload()
    from repro.runtime.report import ExecutionReport

    assert ExecutionReport.from_payload(payload["report"]) == result.report


def test_session_runs_batch_of_jobs_concurrently():
    session = Session(max_workers=6, executor="thread")
    # Jobs must run long enough (size 1024, not 256) that a few ms of
    # thread-spawn stagger under full-suite load cannot serialize them
    # below the 4-in-flight acceptance bar.
    for kernel in ("vecadd", "saxpy", "sgemm", "vecadd", "saxpy", "sgemm"):
        session.submit(KernelJob(kernel=kernel, driver="funcsim", size=1024))
    batch = session.run_batch()
    assert isinstance(batch, BatchReport)
    assert len(batch.results) == 6
    assert batch.ok
    # At least four jobs were in flight at once (the acceptance bar).
    assert batch.peak_concurrency >= 4
    assert batch.total_simulated_instructions > 0
    assert "6 jobs" in batch.summary()


def test_session_results_preserve_submission_order():
    session = Session(max_workers=4, executor="thread")
    jobs = [
        KernelJob(kernel="vecadd", driver="funcsim", size=32, label="first"),
        KernelJob(kernel="saxpy", driver="funcsim", size=32, label="second"),
    ]
    batch = session.run_batch(jobs)
    assert [result.job.label for result in batch.results] == ["first", "second"]


def test_session_process_pool_round_trip():
    session = Session(max_workers=2, executor="process")
    batch = session.run_batch(
        [KernelJob(kernel="vecadd", driver="funcsim", size=64, label=f"j{i}") for i in range(2)]
    )
    assert batch.ok
    assert all(result.report is not None for result in batch.results)


def test_kernel_job_engine_selects_driver_variant():
    from repro.runtime.registry import DriverSpec

    assert KernelJob(kernel="vecadd").driver_name == "simx"
    assert KernelJob(kernel="vecadd", engine="vector").driver_name == "simx:engine=vector"
    assert KernelJob(kernel="vecadd", engine="scalar").driver_name == "simx:engine=scalar"
    assert KernelJob(kernel="vecadd", driver="funcsim", engine="scalar").driver_name == (
        "funcsim:engine=scalar"
    )
    # An explicit engine wins over the spec's own engine selection, both ways.
    scalar_spec = DriverSpec("simx", engine="scalar")
    assert KernelJob(kernel="vecadd", driver=scalar_spec, engine="scalar").driver_name == (
        "simx:engine=scalar"
    )
    assert KernelJob(kernel="vecadd", driver=scalar_spec, engine="vector").driver_name == (
        "simx:engine=vector"
    )
    assert KernelJob(
        kernel="vecadd", driver="funcsim:engine=scalar", engine="vector"
    ).driver_name == "funcsim:engine=vector"
    assert "simx:engine=scalar" in KernelJob(kernel="vecadd", engine="scalar").describe()
    with pytest.raises(ValueError):
        _ = KernelJob(kernel="vecadd", engine="turbo").driver_name


def test_kernel_job_legacy_driver_string_still_resolves():
    """Legacy suffix strings normalize (deprecated) to the structured spec."""
    job = KernelJob(kernel="vecadd", driver="simx-scalar")
    with pytest.deprecated_call():
        assert job.driver_name == "simx:engine=scalar"
    with pytest.deprecated_call():
        assert KernelJob(kernel="vecadd", driver="funcsim-scalar").spec.engine == "scalar"


def test_session_batch_runs_vectorized_timing_engine_bit_identical():
    """A design-space batch runs the vectorized SIMX core through the session
    layer; pinning ``engine="scalar"`` on the same sweep must reproduce the
    exact same cycles and counters."""
    config = VortexConfig()
    session = Session(max_workers=2, executor="serial")
    jobs = [
        KernelJob(kernel="vecadd", config=config, size=64, label="vec"),
        KernelJob(kernel="vecadd", config=config, size=64, engine="scalar", label="ref"),
    ]
    batch = session.run_batch(jobs)
    assert batch.ok
    vec, ref = batch.results
    assert vec.report.engine == "timing-vector"
    assert ref.report.engine == "timing-scalar"
    assert vec.report.cycles == ref.report.cycles
    assert vec.report.counters == ref.report.counters


def test_design_point_jobs_cover_the_table3_grid():
    from repro.common.config import CORE_DESIGN_POINTS

    jobs = design_point_jobs("sgemm", CORE_DESIGN_POINTS, size=36)
    assert len(jobs) == len(CORE_DESIGN_POINTS)
    labels = {job.label for job in jobs}
    assert "4W-4T" in labels and "8W-4T" in labels
    for job in jobs:
        warps, threads = CORE_DESIGN_POINTS[job.label]
        assert job.config.num_warps == warps
        assert job.config.num_threads == threads


# -- differential sweeps -----------------------------------------------------------------


def test_run_differential_reports_identical_counters():
    """A small grid swept on both timing engines must match on every counter."""
    from repro.engine.session import DifferentialReport

    session = Session(max_workers=2, executor="thread")
    jobs = [
        KernelJob(kernel="vecadd", size=64, label="vecadd64"),
        KernelJob(kernel="sgemm", size=36, label="sgemm36"),
    ]
    report = session.run_differential(jobs)
    assert isinstance(report, DifferentialReport)
    assert len(report.results) == 2
    assert report.ok
    assert report.identical_counters
    assert report.mismatching == []
    for result in report.results:
        assert result.scalar.report.engine == "timing-scalar"
        assert result.vector.report.engine == "timing-vector"
        assert result.scalar.report.cycles == result.vector.report.cycles
        assert result.mismatches == []
    assert "identical" in report.summary()
    by_label = report.by_label()
    assert set(by_label) == {"vecadd64", "sgemm36"}


def test_run_differential_sweeps_both_engines_even_when_pinned():
    session = Session(executor="serial")
    report = session.run_differential(
        [KernelJob(kernel="vecadd", size=32, engine="scalar", label="pinned")]
    )
    (result,) = report.results
    assert result.scalar.report.engine == "timing-scalar"
    assert result.vector.report.engine == "timing-vector"
    assert result.identical_counters


def test_run_differential_payload_carries_identity_flags():
    session = Session(executor="serial")
    report = session.run_differential([KernelJob(kernel="vecadd", size=32, label="p")])
    payload = report.to_payload()
    assert payload["identical_counters"] is True
    (row,) = payload["results"]
    assert row["scenario"] == "p"
    assert row["identical_counters"] is True
    assert row["mismatches"] == []
    assert row["cycles"] > 0


def test_run_differential_disambiguates_colliding_labels():
    """Two unlabeled jobs with the same kernel/simulator/geometry but
    different configs must keep distinct rows (not collapse in by_label)."""
    session = Session(executor="serial")
    report = session.run_differential(
        [
            KernelJob(kernel="vecadd", size=32),
            KernelJob(
                kernel="vecadd",
                size=32,
                config=VortexConfig().with_scheduler_policy("greedy-then-oldest"),
            ),
        ]
    )
    labels = [result.describe() for result in report.results]
    assert len(set(labels)) == 2, labels
    assert len(report.by_label()) == 2
    scenarios = [row["scenario"] for row in report.to_payload()["results"]]
    assert len(set(scenarios)) == 2


def test_run_differential_payload_attributes_numbers_to_the_vector_run():
    """Row counters come from the vector run; the driver field must say so
    even when the submitted job pinned the scalar engine."""
    session = Session(executor="serial")
    report = session.run_differential(
        [KernelJob(kernel="vecadd", size=32, engine="scalar", label="pinned")]
    )
    (row,) = report.to_payload()["results"]
    assert row["driver"] == "simx:engine=vector"
    assert row["cycles"] == report.results[0].vector.report.cycles


def test_run_differential_drains_the_session_queue():
    session = Session(executor="serial")
    session.submit(KernelJob(kernel="vecadd", size=32))
    report = session.run_differential()
    assert len(report.results) == 1
    assert len(session.queue) == 0


def test_diff_execution_reports_flags_every_counter():
    from repro.engine.session import diff_execution_reports
    from repro.runtime.report import ExecutionReport

    a = ExecutionReport(
        driver="simx",
        cycles=10,
        instructions=5,
        thread_instructions=20,
        counters={"core0": {"loads": 3}},
    )
    b = ExecutionReport(
        driver="simx",
        cycles=11,
        instructions=5,
        thread_instructions=20,
        counters={"core0": {"loads": 4}, "dcache0": {"hits": 1}},
    )
    diffs = diff_execution_reports(a, b)
    assert "cycles: 10 != 11" in diffs
    assert "core0.loads: 3 != 4" in diffs
    assert "dcache0.hits: 0 != 1" in diffs
    assert diff_execution_reports(a, a) == []


# -- launch options through the session --------------------------------------------------


def test_job_launch_options_bound_the_run():
    from repro.runtime.launch import LaunchOptions

    result = execute_job(
        KernelJob(kernel="vecadd", size=64, options=LaunchOptions(max_cycles=10))
    )
    assert not result.ok
    assert "SimulationLimitExceeded" in result.error
    assert result.error_type == "SimulationLimitExceeded"


def test_session_rejects_unknown_executor():
    with pytest.raises(ValueError):
        Session(executor="gpu")


def test_empty_batch_is_a_noop():
    batch = Session(executor="serial").run_batch([])
    assert batch.results == []
    assert batch.ok
