"""Tests for the simulation service: canonical job identity, the
content-addressed result cache, the sharded worker fleet and its failure
paths (crash retry, timeout, backpressure), and the Session backend."""

import asyncio
import multiprocessing
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.service.worker as worker_mod
from repro.common.config import VortexConfig
from repro.engine.session import JobResult, KernelJob, Session, execute_job
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import DriverSpec
from repro.service import (
    CachedResult,
    InlineWorker,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    SimulationService,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

INLINE = ServiceConfig(num_shards=2, worker_mode="inline")


# -- canonical job identity (KernelJob.cache_key) ----------------------------------------


def test_cache_key_is_stable_and_equal_for_equal_jobs():
    a = KernelJob("vecadd", size=64)
    b = KernelJob("vecadd", size=64)
    assert a.cache_key() == b.cache_key()
    assert len(a.cache_key()) == 64  # sha256 hex


def test_cache_key_resolves_default_engine():
    """``"simx"`` and ``"simx:engine=vector"`` run the same simulation."""
    assert (
        KernelJob("vecadd", size=64).cache_key()
        == KernelJob("vecadd", size=64, engine="vector").cache_key()
    )
    assert (
        KernelJob("vecadd", size=64).cache_key()
        != KernelJob("vecadd", size=64, engine="scalar").cache_key()
    )


def test_cache_key_normalizes_legacy_driver_strings():
    with pytest.deprecated_call():
        legacy = KernelJob("vecadd", size=64, driver="simx-scalar").cache_key()
    canonical = KernelJob("vecadd", size=64, driver="simx:engine=scalar").cache_key()
    spec = KernelJob("vecadd", size=64, driver=DriverSpec("simx", engine="scalar")).cache_key()
    assert legacy == canonical == spec


def test_cache_key_ignores_label_and_default_size():
    base = KernelJob("vecadd", size=256)
    assert base.cache_key() == KernelJob("vecadd", size=256, label="renamed").cache_key()
    # size=None resolves to the kernel's default (256 for vecadd).
    assert base.cache_key() == KernelJob("vecadd").cache_key()


def test_cache_key_normalizes_default_launch_options():
    assert (
        KernelJob("vecadd").cache_key()
        == KernelJob("vecadd", options=LaunchOptions()).cache_key()
    )
    assert (
        KernelJob("vecadd").cache_key()
        != KernelJob("vecadd", options=LaunchOptions(max_cycles=10)).cache_key()
    )


_PERTURBATIONS = {
    "kernel": lambda job: KernelJob("saxpy", size=job.size),
    "size": lambda job: KernelJob(job.kernel, size=job.size + 1),
    "verify": lambda job: KernelJob(job.kernel, size=job.size, verify=False),
    "engine": lambda job: KernelJob(job.kernel, size=job.size, engine="scalar"),
    "driver": lambda job: KernelJob(job.kernel, size=job.size, driver="funcsim"),
    "config": lambda job: KernelJob(
        job.kernel, size=job.size, config=VortexConfig().with_warps_threads(8, 8)
    ),
    "options": lambda job: KernelJob(
        job.kernel, size=job.size, options=LaunchOptions(max_cycles=10_000)
    ),
}


@pytest.mark.parametrize("field", sorted(_PERTURBATIONS))
def test_cache_key_changes_on_field_perturbation(field):
    job = KernelJob("vecadd", size=64)
    assert job.cache_key() != _PERTURBATIONS[field](job).cache_key()


@settings(max_examples=25, deadline=None)
@given(
    kernel=st.sampled_from(["vecadd", "saxpy"]),
    size=st.integers(min_value=1, max_value=512),
    verify=st.booleans(),
    engine=st.sampled_from([None, "scalar", "vector"]),
    label=st.text(max_size=8),
)
def test_cache_key_property_equal_jobs_hash_equal(kernel, size, verify, engine, label):
    """Content-equal jobs hash equal regardless of label; the key depends
    only on (and on all of) the semantic fields."""
    a = KernelJob(kernel, size=size, verify=verify, engine=engine, label=label)
    b = KernelJob(kernel, size=size, verify=verify, engine=engine)
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() != KernelJob(kernel, size=size + 512, verify=verify).cache_key()


# -- result cache ------------------------------------------------------------------------


def _result_for(job: KernelJob) -> JobResult:
    return execute_job(job)


def test_cached_result_round_trips_bit_identical_payloads():
    job = KernelJob("vecadd", size=64)
    cold = _result_for(job)
    served = CachedResult.from_result(cold).to_result(job)
    assert served.cached and served.attempts == 0
    assert served.passed == cold.passed
    assert served.report.to_payload() == cold.report.to_payload()


def test_result_cache_is_lru_bounded():
    cache = ResultCache(max_entries=2)
    entry = CachedResult(passed=True, report_payload=None, source_wall_seconds=0.0)
    cache.store("a", entry)
    cache.store("b", entry)
    assert cache.lookup("a") is not None  # refreshes "a"
    cache.store("c", entry)  # evicts "b" (least recently used)
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.stats.evictions == 1
    assert len(cache) == 2


def test_result_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)


# -- service end-to-end (inline workers: fast, no processes) -----------------------------


def test_service_replays_identical_batches_from_cache():
    jobs = [KernelJob("vecadd", size=64), KernelJob("saxpy", size=64)]
    with ServiceClient(INLINE) as client:
        cold = client.run_jobs(jobs)
        warm = client.run_jobs(jobs)
    assert all(r.ok for r in cold) and all(not r.cached for r in cold)
    assert all(r.ok and r.cached and r.attempts == 0 for r in warm)
    for c, w in zip(cold, warm):
        assert w.report.to_payload() == c.report.to_payload()


def test_service_dedups_identical_inflight_jobs():
    jobs = [KernelJob("vecadd", size=64), KernelJob("vecadd", size=64, label="dup")]
    with ServiceClient(INLINE) as client:
        results = client.run_jobs(jobs)
        stats = client.stats()
    assert all(r.ok for r in results)
    # The duplicate never executed: one miss, one inflight dedup.
    assert stats["executed"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["cache"]["inflight_dedup"] == 1
    assert results[1].cached and results[1].attempts == 0


def test_service_does_not_retry_or_cache_deterministic_failures():
    job = KernelJob("vecadd", size=64, options=LaunchOptions(max_cycles=10))
    with ServiceClient(
        ServiceConfig(num_shards=1, worker_mode="inline", max_attempts=3)
    ) as client:
        first = client.run_job(job)
        second = client.run_job(job)
        stats = client.stats()
    assert first.error_type == "SimulationLimitExceeded"
    assert first.attempts == 1  # deterministic failure: no retries
    assert stats["retries"] == 0
    assert stats["deterministic_failures"] == 2  # ...and not served from cache
    assert second.attempts == 1 and not second.cached


def test_service_treats_unknown_kernels_as_uncacheable():
    with ServiceClient(ServiceConfig(num_shards=1, worker_mode="inline")) as client:
        result = client.run_job(KernelJob("no-such-kernel"))
        stats = client.stats()
    assert result.error_type == "KeyError"
    assert stats["cache"]["uncacheable"] == 1
    assert stats["cache"]["misses"] == 0


def test_service_caches_verification_failures():
    """passed=False without an error is a deterministic outcome: cacheable."""
    # max_instructions large enough to complete but verify=True on a
    # deliberately wrong-size run is hard to fake; instead check the cache
    # policy directly: a passed=False, error=None result is stored.
    cache = ResultCache()
    job = KernelJob("vecadd", size=64)
    failed = JobResult(job=job, report=None, passed=False)
    cache.store(job.cache_key(), CachedResult.from_result(failed))
    served = cache.lookup(job.cache_key()).to_result(job)
    assert served.cached and not served.passed and served.error is None


def test_service_shards_stably_by_key():
    async def scenario():
        async with SimulationService(
            ServiceConfig(num_shards=4, worker_mode="inline")
        ) as service:
            key = KernelJob("vecadd", size=64).cache_key()
            first = service._shard_for(key)
            assert all(service._shard_for(key) is first for _ in range(8))
            # Uncacheable jobs round-robin across all shards.
            indices = {service._shard_for(None).index for _ in range(8)}
            assert indices == {0, 1, 2, 3}

    asyncio.run(scenario())


# -- backpressure ------------------------------------------------------------------------


class _SlowWorker:
    """Test double: a worker whose jobs take a controlled amount of time."""

    def __init__(self, delay: float):
        self.delay = delay
        self.jobs_served = 0
        self.pid = None
        self.alive = True

    def request(self, job, timeout):
        time.sleep(self.delay)
        self.jobs_served += 1
        return JobResult(job=job, passed=True)

    def terminate(self):
        pass

    def stop(self):
        pass


def test_submission_blocks_at_the_backpressure_bound():
    """With queue_depth=1, a third concurrent submit must block in
    ``queue.put`` (not enqueue) until the worker frees a slot."""

    async def scenario():
        async with SimulationService(
            ServiceConfig(num_shards=1, queue_depth=1, worker_mode="inline")
        ) as service:
            shard = service._shards[0]
            shard.worker = _SlowWorker(delay=0.25)
            jobs = [KernelJob("vecadd", size=size) for size in (8, 16, 24)]
            tasks = []
            for job in jobs:
                tasks.append(asyncio.ensure_future(service.submit(job)))
                await asyncio.sleep(0.05)
            # Job 1 is executing, job 2 fills the single queue slot; job 3's
            # put() is blocked by backpressure and has not enqueued.
            assert shard.enqueued == 2
            assert shard.queue.full()
            results = await asyncio.gather(*tasks)
            assert shard.enqueued == 3
            assert all(r.passed for r in results)

    asyncio.run(scenario())


# -- process workers: crash retry + timeout ----------------------------------------------


@pytest.mark.skipif(not HAS_FORK, reason="fault injector needs fork inheritance")
def test_worker_crash_mid_job_is_retried_and_recorded(tmp_path, monkeypatch):
    """A worker dying mid-job (fork-injected os._exit) is respawned and the
    job retried: the batch still fully passes, with the attempt recorded."""
    flag = tmp_path / "crashed-once"

    def injector(job):
        if job.label == "poison" and not flag.exists():
            flag.touch()
            os._exit(1)

    monkeypatch.setattr(worker_mod, "_FAULT_INJECTOR", injector)
    config = ServiceConfig(
        num_shards=1, worker_mode="process", max_attempts=3, retry_backoff=0.01
    )
    with ServiceClient(config) as client:
        result = client.run_job(KernelJob("vecadd", size=64, label="poison"))
        stats = client.stats()
    assert result.ok
    assert result.attempts == 2  # crashed once, succeeded on retry
    assert stats["worker_crashes"] == 1
    assert stats["respawns"] == 1
    assert stats["retries"] == 1


@pytest.mark.skipif(not HAS_FORK, reason="deterministic crash needs fork inheritance")
def test_worker_crash_exhausting_attempts_reports_infrastructure_error(monkeypatch):
    def injector(job):
        if job.label == "always-dies":
            os._exit(1)

    monkeypatch.setattr(worker_mod, "_FAULT_INJECTOR", injector)
    config = ServiceConfig(
        num_shards=1, worker_mode="process", max_attempts=2, retry_backoff=0.01
    )
    with ServiceClient(config) as client:
        result = client.run_job(KernelJob("vecadd", size=64, label="always-dies"))
        stats = client.stats()
    assert not result.ok
    assert result.error_type == "WorkerCrash"
    assert result.attempts == 2
    assert stats["worker_crashes"] == 2
    # An errored result must never enter the cache.
    assert stats["cache"]["stores"] == 0


def test_per_job_timeout_kills_the_worker_and_reports_timeout():
    config = ServiceConfig(
        num_shards=1, worker_mode="process", job_timeout=0.1, max_attempts=1
    )
    with ServiceClient(config) as client:
        (pid,) = client.worker_pids()
        # size=256 sgemm simulates for multiple seconds — far past the budget.
        result = client.run_job(KernelJob("sgemm", size=256))
        stats = client.stats()
        (new_pid,) = client.worker_pids()
    assert result.error_type == "JobTimeout"
    assert not result.ok
    assert stats["timeouts"] == 1
    assert stats["respawns"] == 1
    assert new_pid != pid  # the stuck worker was killed and replaced


def test_process_worker_warm_pool_round_trip():
    """A process worker serves repeat jobs warm, bit-identical to cold."""
    worker = worker_mod.create_worker("process")
    if isinstance(worker, InlineWorker):
        pytest.skip("platform cannot create worker processes")
    try:
        job = KernelJob("vecadd", size=64)
        first = worker.request(job, timeout=120.0)
        second = worker.request(job, timeout=120.0)
        assert first.ok and second.ok
        # Two genuine executions: identical in every simulated quantity
        # (host wall-clock legitimately differs run to run).
        cold, warm = first.report.to_payload(), second.report.to_payload()
        cold.pop("wall_seconds")
        warm.pop("wall_seconds")
        assert cold == warm
        assert worker.jobs_served == 2
    finally:
        worker.stop()


# -- Session integration -----------------------------------------------------------------


def test_session_service_backend_serves_batches():
    with Session(executor="service", service_config=INLINE) as session:
        session.submit(KernelJob("vecadd", size=64))
        session.submit(KernelJob("vecadd", size=64, label="dup"))
        first = session.run_batch()
        second = session.run_batch([KernelJob("vecadd", size=64)])
    assert first.ok and first.executor == "service"
    assert first.cache_hits == 1  # the inflight-deduped duplicate
    assert second.results[0].cached
    payload = first.to_payload()
    assert payload["cache_hits"] == 1
    assert payload["results"][0]["report"]["cycles"] > 0


def test_session_shares_an_external_service_client():
    with ServiceClient(INLINE) as client:
        with Session(executor="service", service=client) as one:
            one.run_batch([KernelJob("vecadd", size=64)])
        # Closing the session must not close the shared client...
        with Session(executor="service", service=client) as two:
            batch = two.run_batch([KernelJob("vecadd", size=64)])
    # ...so the second session is served from the first session's cache.
    assert batch.results[0].cached


def test_service_client_rejects_use_after_close():
    client = ServiceClient(INLINE)
    client.close()
    client.close()  # idempotent
    with pytest.raises(RuntimeError):
        client.run_job(KernelJob("vecadd", size=64))
