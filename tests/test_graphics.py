"""Tests for the software graphics pipeline."""

import math

import numpy as np
import pytest

from repro.graphics.fragment import BlendMode, CompareFunc, FogState, FragmentOps
from repro.graphics.framebuffer import Framebuffer, pack_color, unpack_color
from repro.graphics.geometry import GeometryStage, Matrix4, Vertex
from repro.graphics.pipeline import GraphicsContext, PrimitiveType, TextureBinding
from repro.graphics.raster import Fragment, Rasterizer
from repro.graphics.tiles import TileGrid
from repro.texture.formats import TexFilter


# -- framebuffer -------------------------------------------------------------------------


def test_framebuffer_clear_and_pixel_roundtrip():
    fb = Framebuffer(8, 8)
    fb.clear(color=(10, 20, 30, 255), depth=0.5)
    assert fb.read_pixel(3, 3) == (10, 20, 30, 255)
    assert fb.depth[0, 0] == pytest.approx(0.5)
    fb.write_pixel(1, 2, (200, 100, 50, 255))
    assert fb.read_pixel(1, 2) == (200, 100, 50, 255)
    assert fb.to_rgba_array().shape == (8, 8, 4)


def test_color_packing_roundtrip():
    assert unpack_color(pack_color((1, 2, 3, 4))) == (1, 2, 3, 4)


def test_framebuffer_rejects_bad_size():
    with pytest.raises(ValueError):
        Framebuffer(0, 8)


# -- geometry ----------------------------------------------------------------------------


def test_orthographic_vertex_maps_to_viewport():
    stage = GeometryStage(100, 100)
    stage.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    centre = stage.process_vertex(Vertex(position=(0, 0, 0, 1)))
    assert centre.x == pytest.approx(49.5)
    assert centre.y == pytest.approx(49.5)
    corner = stage.process_vertex(Vertex(position=(1, 1, 0, 1)))
    assert corner.x == pytest.approx(99)
    assert corner.y == pytest.approx(0)


def test_vertex_behind_eye_is_rejected():
    stage = GeometryStage(64, 64)
    stage.set_mvp(Matrix4.perspective(math.radians(60), 1.0, 0.1, 100.0))
    behind = stage.process_vertex(Vertex(position=(0, 0, 5.0, 1)))  # +z is behind the camera
    assert behind is None


def test_assemble_triangles_culls_offscreen():
    stage = GeometryStage(64, 64)
    stage.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    onscreen = [
        Vertex(position=(-0.5, -0.5, 0, 1)),
        Vertex(position=(0.5, -0.5, 0, 1)),
        Vertex(position=(0.0, 0.5, 0, 1)),
    ]
    offscreen = [
        Vertex(position=(5.0, 5.0, 0, 1)),
        Vertex(position=(6.0, 5.0, 0, 1)),
        Vertex(position=(5.5, 6.0, 0, 1)),
    ]
    triangles = stage.assemble_triangles(onscreen + offscreen)
    assert len(triangles) == 1


def test_matrix_helpers_are_invertible_transforms():
    mvp = Matrix4.translation(1, 2, 3) @ Matrix4.scale(2, 2, 2) @ Matrix4.rotation_z(0.3)
    assert np.linalg.det(mvp) != 0
    assert Matrix4.rotation_y(0.0) == pytest.approx(np.eye(4))


# -- tiles --------------------------------------------------------------------------------


def test_tile_grid_covers_screen():
    grid = TileGrid(70, 50, tile_size=16)
    assert grid.tiles_x == 5 and grid.tiles_y == 4
    assert sum(tile.width * tile.height for tile in grid.tiles) == 70 * 50


def test_tile_binning_assigns_overlapping_tiles_only():
    grid = TileGrid(64, 64, tile_size=16)
    count = grid.bin_bbox(0, 0, 0, 15, 15)
    assert count == 1
    count = grid.bin_bbox(1, 10, 10, 40, 40)
    assert count == 9
    assert grid.bin_bbox(2, 100, 100, 120, 120) == 0
    stats = grid.bin_statistics()
    assert stats["occupied"] == 9  # triangle 1 covers 9 tiles (incl. triangle 0's)
    assert grid.triangles_in(grid.tiles[0]) == [0, 1]


# -- rasterizer ---------------------------------------------------------------------------


def _screen_triangle(stage_size=32):
    stage = GeometryStage(stage_size, stage_size)
    stage.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    return stage.assemble_triangles(
        [
            Vertex(position=(-0.8, -0.8, 0, 1), color=(1, 0, 0, 1), uv=(0, 0)),
            Vertex(position=(0.8, -0.8, 0, 1), color=(0, 1, 0, 1), uv=(1, 0)),
            Vertex(position=(0.0, 0.8, 0, 1), color=(0, 0, 1, 1), uv=(0.5, 1)),
        ]
    )[0]


def test_triangle_rasterization_covers_interior():
    rasterizer = Rasterizer(32, 32)
    fragments = list(rasterizer.rasterize_triangle(*_screen_triangle()))
    assert len(fragments) > 100
    xs = {fragment.x for fragment in fragments}
    ys = {fragment.y for fragment in fragments}
    assert max(xs) < 32 and max(ys) < 32
    # Barycentric colors stay inside the convex hull of the vertex colors.
    for fragment in fragments[::37]:
        assert all(-1e-6 <= channel <= 1 + 1e-6 for channel in fragment.color)


def test_degenerate_triangle_is_culled():
    rasterizer = Rasterizer(16, 16)
    stage = GeometryStage(16, 16)
    stage.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    v = stage.process_vertex(Vertex(position=(0, 0, 0, 1)))
    assert list(rasterizer.rasterize_triangle(v, v, v)) == []
    assert rasterizer.triangles_culled == 1


def test_adjacent_triangles_shade_seam_pixels_exactly_once():
    """Top-left fill rule: the shared edge of two triangles must not double-blend."""
    from repro.graphics.geometry import ScreenVertex

    def vertex(x, y):
        return ScreenVertex(x=x, y=y, z=0.5, w=1.0, color=(0.25, 0.25, 0.25, 1.0), uv=(0, 0))

    # A quad split along its diagonal; the diagonal, the verticals and the
    # horizontals all pass exactly through pixel centres.
    a, b, c, d = vertex(2.5, 2.5), vertex(8.5, 2.5), vertex(8.5, 12.5), vertex(2.5, 12.5)
    rasterizer = Rasterizer(16, 16)
    fragments = list(rasterizer.rasterize_triangle(a, b, c))
    fragments += list(rasterizer.rasterize_triangle(a, c, d))
    pixels = [(fragment.x, fragment.y) for fragment in fragments]
    assert len(pixels) == len(set(pixels)), "seam pixels rasterized twice"
    # The union covers the quad interior: top/left edges in, bottom/right out.
    assert set(pixels) == {(x, y) for x in range(2, 8) for y in range(2, 12)}

    # End to end: additive blend over black writes each seam pixel once.
    fb = Framebuffer(16, 16)
    ops = FragmentOps(depth_test=False, blend=BlendMode.ADDITIVE)
    for fragment in fragments:
        ops.process(fb, fragment)
    covered = fb.color[fb.color != 0]
    assert ops.fragments_written == 60
    assert covered.size == 60
    assert np.all((covered & 0xFF) == 64), "a seam pixel blended twice"


def test_line_rasterization_emits_each_endpoint_once():
    """The DDA walk must not emit a duplicate endpoint fragment."""
    from repro.graphics.geometry import ScreenVertex

    def vertex(x, y):
        return ScreenVertex(x=x, y=y, z=0.0, w=1.0, color=(1, 1, 1, 1), uv=(0, 0))

    rasterizer = Rasterizer(32, 32)
    fragments = list(rasterizer.rasterize_line(vertex(2.0, 3.0), vertex(9.0, 3.0)))
    pixels = [(fragment.x, fragment.y) for fragment in fragments]
    assert pixels == [(x, 3) for x in range(2, 10)]  # 8 fragments, no duplicates
    assert rasterizer.fragments_generated == 8

    # Additive blend along the line leaves every pixel written exactly once.
    fb = Framebuffer(32, 32)
    ops = FragmentOps(depth_test=False, blend=BlendMode.ADDITIVE)
    for fragment in fragments:
        ops.process(fb, Fragment(fragment.x, fragment.y, fragment.depth,
                                 (0.25, 0.25, 0.25, 1.0), fragment.uv))
    covered = fb.color[fb.color != 0]
    assert covered.size == 8
    assert np.all((covered & 0xFF) == 64)


def test_line_rasterization_has_no_holes_or_duplicates():
    """Fractional deltas must not skip pixels; rounding ties must not repeat them."""
    from repro.graphics.geometry import ScreenVertex

    def vertex(x, y):
        return ScreenVertex(x=x, y=y, z=0.0, w=1.0, color=(1, 1, 1, 1), uv=(0, 0))

    rasterizer = Rasterizer(32, 32)
    # dx = 1.9: a truncated step count would stride 1.9 pixels and skip x=3.
    fragments = list(rasterizer.rasterize_line(vertex(2.4, 3.0), vertex(4.3, 3.0)))
    assert [(f.x, f.y) for f in fragments] == [(2, 3), (3, 3), (4, 3)]
    # Half-integer endpoints put every interpolated x on a rounding tie;
    # banker's rounding maps 3.5 and 4.5 both to 4 — pixels must still be unique.
    fragments = list(rasterizer.rasterize_line(vertex(2.5, 3.0), vertex(10.5, 3.0)))
    pixels = [(f.x, f.y) for f in fragments]
    assert len(pixels) == len(set(pixels))
    assert pixels == [(x, 3) for x in (2, 4, 6, 8, 10)]

    rng = np.random.default_rng(13)
    for _ in range(50):
        (x0, y0), (x1, y1) = rng.uniform(0, 31, size=(2, 2))
        pixels = [(f.x, f.y) for f in rasterizer.rasterize_line(vertex(x0, y0), vertex(x1, y1))]
        assert len(pixels) == len(set(pixels)), "duplicate line pixel"
        for (ax, ay), (bx, by) in zip(pixels, pixels[1:]):
            assert max(abs(bx - ax), abs(by - ay)) == 1, "hole in line"


def test_line_and_point_rasterization():
    rasterizer = Rasterizer(32, 32)
    stage = GeometryStage(32, 32)
    stage.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    v0 = stage.process_vertex(Vertex(position=(-1, -1, 0, 1)))
    v1 = stage.process_vertex(Vertex(position=(1, 1, 0, 1)))
    line = list(rasterizer.rasterize_line(v0, v1))
    assert len(line) >= 31
    point = list(rasterizer.rasterize_point(v0))
    assert len(point) == 1


# -- fragment ops ----------------------------------------------------------------------------


def test_depth_test_keeps_nearest_fragment():
    fb = Framebuffer(4, 4)
    fb.clear()
    ops = FragmentOps(depth_test=True)
    far = Fragment(x=1, y=1, depth=0.9, color=(1, 0, 0, 1), uv=(0, 0))
    near = Fragment(x=1, y=1, depth=0.1, color=(0, 1, 0, 1), uv=(0, 0))
    assert ops.process(fb, far)
    assert ops.process(fb, near)
    assert not ops.process(fb, far)  # re-drawing the far fragment fails the test
    assert ops.depth_kills == 1
    assert fb.read_pixel(1, 1)[1] == 255  # green won


def test_alpha_test_discards_transparent_fragments():
    fb = Framebuffer(4, 4)
    ops = FragmentOps(depth_test=False, alpha_test=True, alpha_ref=0.5)
    transparent = Fragment(x=0, y=0, depth=0.5, color=(1, 1, 1, 0.1), uv=(0, 0))
    opaque = Fragment(x=0, y=0, depth=0.5, color=(1, 1, 1, 0.9), uv=(0, 0))
    assert not ops.process(fb, transparent)
    assert ops.process(fb, opaque)
    assert ops.alpha_kills == 1


def test_stencil_test_masks_pixels():
    fb = Framebuffer(4, 4)
    fb.stencil[2, 2] = 1
    ops = FragmentOps(depth_test=False, stencil_test=True,
                      stencil_func=CompareFunc.EQUAL, stencil_ref=1)
    inside = Fragment(x=2, y=2, depth=0.5, color=(1, 1, 1, 1), uv=(0, 0))
    outside = Fragment(x=0, y=0, depth=0.5, color=(1, 1, 1, 1), uv=(0, 0))
    assert ops.process(fb, inside)
    assert not ops.process(fb, outside)


def test_fog_blends_toward_fog_color():
    fb = Framebuffer(2, 2)
    ops = FragmentOps(depth_test=False,
                      fog=FogState(enabled=True, color=(0, 0, 0), start=0.0, end=1.0))
    fragment = Fragment(x=0, y=0, depth=0.75, color=(1.0, 1.0, 1.0, 1.0), uv=(0, 0))
    ops.process(fb, fragment)
    r, g, b, _ = fb.read_pixel(0, 0)
    assert r == g == b
    assert 50 <= r <= 80  # 25% of full white


def test_alpha_blending_mixes_with_destination():
    fb = Framebuffer(2, 2)
    fb.clear(color=(0, 0, 255, 255))
    ops = FragmentOps(depth_test=False, blend=BlendMode.ALPHA)
    fragment = Fragment(x=0, y=0, depth=0.5, color=(1.0, 0.0, 0.0, 0.5), uv=(0, 0))
    ops.process(fb, fragment)
    r, g, b, _ = fb.read_pixel(0, 0)
    assert 120 <= r <= 135 and 120 <= b <= 135


# -- full pipeline ------------------------------------------------------------------------------


def _solid_triangle_context(size=32):
    ctx = GraphicsContext(size, size, tile_size=8)
    ctx.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    ctx.clear(color=(0, 0, 0, 255))
    return ctx


def test_context_renders_triangle():
    ctx = _solid_triangle_context()
    written = ctx.draw(
        [
            Vertex(position=(-0.9, -0.9, 0, 1), color=(1, 1, 1, 1)),
            Vertex(position=(0.9, -0.9, 0, 1), color=(1, 1, 1, 1)),
            Vertex(position=(0.0, 0.9, 0, 1), color=(1, 1, 1, 1)),
        ]
    )
    assert written > 100
    assert ctx.framebuffer.nonblack_pixels() == written


def test_context_depth_ordering_between_draws():
    ctx = _solid_triangle_context()
    # With the OpenGL orthographic convention, larger eye-space z maps to a
    # smaller depth value here, so the +0.5 triangle is the near one.
    near = [
        Vertex(position=(-0.5, -0.5, 0.5, 1), color=(0, 1, 0, 1)),
        Vertex(position=(0.5, -0.5, 0.5, 1), color=(0, 1, 0, 1)),
        Vertex(position=(0.0, 0.5, 0.5, 1), color=(0, 1, 0, 1)),
    ]
    far = [
        Vertex(position=(-0.5, -0.5, -0.5, 1), color=(1, 0, 0, 1)),
        Vertex(position=(0.5, -0.5, -0.5, 1), color=(1, 0, 0, 1)),
        Vertex(position=(0.0, 0.5, -0.5, 1), color=(1, 0, 0, 1)),
    ]
    ctx.draw(near)
    ctx.draw(far)
    centre = ctx.framebuffer.read_pixel(16, 16)
    assert centre[1] == 255 and centre[0] == 0  # near (green) triangle wins


def test_context_textured_draw_modulates_color():
    ctx = _solid_triangle_context(32)
    checker = np.zeros((8, 8, 4), dtype=np.uint8)
    checker[:, :, 3] = 255
    checker[::2, ::2, :3] = 255
    checker[1::2, 1::2, :3] = 255
    ctx.bind_texture(checker, filter_mode=TexFilter.POINT)
    ctx.draw(
        [
            Vertex(position=(-1, -1, 0, 1), uv=(0, 0)),
            Vertex(position=(1, -1, 0, 1), uv=(1, 0)),
            Vertex(position=(0, 1, 0, 1), uv=(0.5, 1)),
        ]
    )
    pixels = ctx.framebuffer.to_rgba_array()
    covered = pixels[..., :3].sum(axis=2) > 0
    assert covered.any()
    # A checkerboard texture leaves some covered pixels black and some white.
    values = ctx.framebuffer.color[covered ^ (pixels[..., 3] == 0)]
    assert ctx.framebuffer.nonblack_pixels() < covered.sum() + (pixels[..., 3] > 0).sum()


def test_texture_binding_validation():
    with pytest.raises(ValueError):
        TextureBinding(np.zeros((7, 8, 4), dtype=np.uint8))
    with pytest.raises(ValueError):
        TextureBinding(np.zeros((8, 8, 3), dtype=np.uint8))


def test_points_and_lines_primitives():
    ctx = _solid_triangle_context(16)
    points_written = ctx.draw(
        [Vertex(position=(0, 0, 0, 1), color=(1, 1, 1, 1))], primitive=PrimitiveType.POINTS
    )
    assert points_written == 1
    lines_written = ctx.draw(
        [
            Vertex(position=(-1, 0, 0, 1), color=(1, 1, 1, 1)),
            Vertex(position=(1, 0, 0, 1), color=(1, 1, 1, 1)),
        ],
        primitive=PrimitiveType.LINES,
    )
    assert lines_written >= 15
