"""Tests for the binary32 floating-point semantics."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch.fpu import fpu_op
from repro.common.bitutils import bits_to_float, float_to_bits, to_int32

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


def f2b(value: float) -> int:
    return float_to_bits(value)


@given(finite_floats, finite_floats)
def test_add_matches_numpy_float32(a, b):
    result = bits_to_float(fpu_op("fadd.s", f2b(a), f2b(b)))
    expected = np.float32(np.float32(a) + np.float32(b))
    if math.isnan(expected):
        assert math.isnan(result)
    else:
        assert result == pytest.approx(float(expected), rel=1e-6) or result == float(expected)


@given(finite_floats, finite_floats)
def test_mul_matches_numpy_float32(a, b):
    result = bits_to_float(fpu_op("fmul.s", f2b(a), f2b(b)))
    with np.errstate(over="ignore"):
        expected = np.float32(np.float32(a) * np.float32(b))
    if math.isnan(expected) or math.isinf(expected):
        assert math.isnan(result) or math.isinf(result)
    else:
        assert result == pytest.approx(float(expected), rel=1e-6) or result == float(expected)


def test_division_and_by_zero():
    assert bits_to_float(fpu_op("fdiv.s", f2b(6.0), f2b(3.0))) == 2.0
    assert math.isinf(bits_to_float(fpu_op("fdiv.s", f2b(1.0), f2b(0.0))))
    assert math.isnan(bits_to_float(fpu_op("fdiv.s", f2b(0.0), f2b(0.0))))


def test_sqrt():
    assert bits_to_float(fpu_op("fsqrt.s", f2b(9.0))) == 3.0
    assert math.isnan(bits_to_float(fpu_op("fsqrt.s", f2b(-1.0))))


def test_min_max_with_nan_prefers_number():
    nan = 0x7FC00000
    assert fpu_op("fmin.s", nan, f2b(2.0)) == f2b(2.0)
    assert fpu_op("fmax.s", f2b(2.0), nan) == f2b(2.0)


def test_sign_injection():
    assert fpu_op("fsgnj.s", f2b(1.5), f2b(-2.0)) == f2b(-1.5)
    assert fpu_op("fsgnjn.s", f2b(1.5), f2b(-2.0)) == f2b(1.5)
    assert fpu_op("fsgnjx.s", f2b(-1.5), f2b(-2.0)) == f2b(1.5)


def test_comparisons_with_nan_return_false():
    nan = 0x7FC00000
    assert fpu_op("feq.s", nan, nan) == 0
    assert fpu_op("flt.s", nan, f2b(1.0)) == 0
    assert fpu_op("fle.s", f2b(1.0), nan) == 0
    assert fpu_op("feq.s", f2b(3.0), f2b(3.0)) == 1
    assert fpu_op("flt.s", f2b(1.0), f2b(2.0)) == 1
    assert fpu_op("fle.s", f2b(2.0), f2b(2.0)) == 1


def test_int_conversions_truncate_and_saturate():
    assert to_int32(fpu_op("fcvt.w.s", f2b(-2.75))) == -2
    assert to_int32(fpu_op("fcvt.w.s", f2b(2.75))) == 2
    assert to_int32(fpu_op("fcvt.w.s", f2b(1e20))) == 2**31 - 1
    assert to_int32(fpu_op("fcvt.w.s", f2b(-1e20))) == -(2**31)
    assert fpu_op("fcvt.wu.s", f2b(-3.0)) == 0
    assert fpu_op("fcvt.wu.s", f2b(3.9)) == 3


@given(st.integers(min_value=-(2**24), max_value=2**24))
def test_int_to_float_roundtrip_exact_in_24_bits(value):
    bits = fpu_op("fcvt.s.w", value % 2**32)
    assert bits_to_float(bits) == float(value)


def test_moves_preserve_bit_patterns():
    pattern = 0xDEADBEEF
    assert fpu_op("fmv.w.x", pattern) == pattern
    assert fpu_op("fmv.x.w", pattern) == pattern


@given(finite_floats, finite_floats, finite_floats)
def test_fused_multiply_add_family(a, b, c):
    fa, fb, fc = f2b(a), f2b(b), f2b(c)
    product = float(np.float32(a)) * float(np.float32(b))
    if not math.isfinite(product) or abs(product) > 1e30:
        return
    # Keep the expectation in float64 and round once, matching the fused
    # semantics: a Python-float + np.float32 expression would compute in
    # float32 under NEP 50 (numpy >= 2), rounding the product early — under
    # cancellation that diverges from the fused result by far more than the
    # tolerance.
    assert bits_to_float(fpu_op("fmadd.s", fa, fb, fc)) == pytest.approx(
        float(np.float32(product + float(np.float32(c)))), rel=1e-5, abs=1e-30
    )
    assert bits_to_float(fpu_op("fnmsub.s", fa, fb, fc)) == pytest.approx(
        float(np.float32(-product + float(np.float32(c)))), rel=1e-5, abs=1e-30
    )


def test_unknown_operation_rejected():
    with pytest.raises(ValueError):
        fpu_op("fdot.s", 0, 0)
