"""Tests for the configuration dataclasses."""

import pytest

from repro.common.config import (
    CORE_DESIGN_POINTS,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    VortexConfig,
    baseline_config,
)


def test_baseline_matches_paper_defaults():
    config = baseline_config()
    assert config.core.num_warps == 4
    assert config.core.num_threads == 4
    assert config.dcache.num_banks == 4
    assert config.num_cores == 1


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(line_size=48)
    with pytest.raises(ValueError):
        CacheConfig(num_banks=3)
    with pytest.raises(ValueError):
        CacheConfig(num_ports=0)


def test_cache_num_sets():
    cache = CacheConfig(size=16 * 1024, line_size=64, num_banks=4, num_ways=2)
    assert cache.num_sets * cache.num_ways * cache.num_banks * cache.line_size == cache.size


def test_core_config_limits():
    with pytest.raises(ValueError):
        CoreConfig(num_threads=0)
    with pytest.raises(ValueError):
        CoreConfig(num_threads=64)
    with pytest.raises(ValueError):
        CoreConfig(num_warps=33)


def test_memory_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(latency=0)
    with pytest.raises(ValueError):
        MemoryConfig(bandwidth=0)


def test_with_helpers_return_new_configs():
    base = baseline_config()
    scaled = base.with_cores(8)
    assert scaled.num_cores == 8 and base.num_cores == 1
    retuned = base.with_warps_threads(8, 2)
    assert (retuned.core.num_warps, retuned.core.num_threads) == (8, 2)
    ported = base.with_dcache_ports(4)
    assert ported.dcache.num_ports == 4
    memory = base.with_memory(latency=200, bandwidth=2)
    assert memory.memory.latency == 200 and memory.memory.bandwidth == 2


def test_total_threads():
    config = baseline_config().with_cores(4).with_warps_threads(8, 4)
    assert config.total_threads == 4 * 8 * 4


def test_clusters_must_divide_cores():
    with pytest.raises(ValueError):
        VortexConfig(num_cores=4, num_clusters=3)


def test_design_points_cover_table3():
    assert set(CORE_DESIGN_POINTS) == {"4W-4T", "2W-8T", "8W-2T", "4W-8T", "8W-4T"}
    assert CORE_DESIGN_POINTS["4W-4T"] == (4, 4)


def test_describe_is_flat_dict():
    summary = baseline_config().describe()
    assert summary["warps"] == 4
    assert summary["dcache_banks"] == 4
