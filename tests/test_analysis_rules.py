"""Tests for the vxlint static-analysis suite (``repro.analysis``).

Every rule gets a bad fixture (must fire) and a good fixture (must stay
quiet); the three seeded-defect fixtures from the issue — state mutation
inside ``can_accept``, a misspelled counter key, ``random.random()`` in a
scheduler — prove the rules catch exactly the regressions the repo's
bit-identity story fears.  A final gate test runs the real analysis over
``src`` against the committed baseline and state inventory.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.framework import (
    Baseline,
    Finding,
    ModuleInfo,
    load_modules,
    module_name_for,
    run_rules,
)
from repro.analysis.rules import (
    CounterDisciplineRule,
    DeterminismRule,
    DtypeDisciplineRule,
    HotPathAllocationRule,
    PredicatePurityRule,
    SnapshotCoverageRule,
    StateInventoryRule,
    TraceEmissionGuardRule,
    collect_state,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_module(source: str, module: str = "repro.cache.fixture") -> ModuleInfo:
    path = "src/" + module.replace(".", "/") + ".py"
    return ModuleInfo(path, module, source)


def run_one(rule, source: str, module: str = "repro.cache.fixture") -> list[Finding]:
    info = make_module(source, module)
    result = run_rules([info], rules=[rule])
    return result.findings


# ---------------------------------------------------------------------------
# VX001 determinism


class TestDeterminismRule:
    def test_seeded_defect_random_in_scheduler(self):
        # Seeded defect #3: randomness in a scheduler decision.
        source = (
            "import random\n"
            "class WavefrontScheduler:\n"
            "    def select(self):\n"
            "        return random.random()\n"
        )
        findings = run_one(DeterminismRule(), source, "repro.core.scheduler_fixture")
        details = {f.detail for f in findings}
        assert "import:random" in details
        assert "call:random.random" in details

    def test_wall_clock_flagged(self):
        source = "import time\n\ndef tick():\n    return time.perf_counter()\n"
        findings = run_one(DeterminismRule(), source, "repro.core.clock_fixture")
        assert any(f.detail == "call:time.perf_counter" for f in findings)

    def test_id_keying_flagged(self):
        source = "def key(obj):\n    return id(obj)\n"
        findings = run_one(DeterminismRule(), source)
        assert any(f.detail == "call:id" for f in findings)

    def test_set_iteration_flagged(self):
        source = (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.pending = set()\n"
            "    def drain(self):\n"
            "        out = list(self.pending)\n"
            "        for item in self.pending:\n"
            "            out.append(item)\n"
            "        return out\n"
        )
        findings = run_one(DeterminismRule(), source)
        assert sum(f.detail.startswith("set-order:") for f in findings) == 2

    def test_sorted_set_is_clean(self):
        source = (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.pending = set()\n"
            "    def drain(self):\n"
            "        return sorted(self.pending)\n"
        )
        assert run_one(DeterminismRule(), source) == []

    def test_out_of_scope_module_untouched(self):
        # Kernel generators may seed RNGs deliberately; the rule is scoped.
        source = "import random\nx = random.random()\n"
        assert run_one(DeterminismRule(), source, "repro.kernels.noise") == []

    def test_membership_check_is_clean(self):
        source = (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.warm = set()\n"
            "    def hot(self, line):\n"
            "        return line in self.warm\n"
        )
        assert run_one(DeterminismRule(), source) == []


# ---------------------------------------------------------------------------
# VX002 predicate purity


class TestPredicatePurityRule:
    def test_seeded_defect_mutation_in_can_accept(self):
        # Seeded defect #1: state mutation inside can_accept.
        source = (
            "class Cache:\n"
            "    def can_accept(self, request):\n"
            "        self.attempts = self.attempts + 1\n"
            "        return True\n"
        )
        findings = run_one(PredicatePurityRule(), source)
        assert any(f.detail == "store:self.attempts" for f in findings)

    def test_mutating_method_call_flagged(self):
        source = (
            "class Cache:\n"
            "    def can_accept_batch(self, addresses):\n"
            "        self.queue.append(addresses)\n"
            "        return []\n"
        )
        findings = run_one(PredicatePurityRule(), source)
        assert any(f.detail == "mutating-call:self.queue.append" for f in findings)

    def test_counter_increment_flagged(self):
        source = (
            "class Dram:\n"
            "    def next_event_cycle(self):\n"
            "        self.perf.incr('probes')\n"
            "        return None\n"
        )
        findings = run_one(PredicatePurityRule(), source)
        assert any("incr" in f.detail for f in findings)

    def test_local_result_list_is_clean(self):
        # The real can_accept_batch builds a fresh local list — allowed.
        source = (
            "class Cache:\n"
            "    def can_accept_batch(self, addresses):\n"
            "        results = []\n"
            "        for address in addresses:\n"
            "            results.append(address % 2 == 0)\n"
            "        return results\n"
        )
        assert run_one(PredicatePurityRule(), source) == []

    def test_aliased_self_state_still_flagged(self):
        # A local alias of self state must not launder the mutation.
        source = (
            "class Cache:\n"
            "    def can_accept(self, request):\n"
            "        bank = self.banks[0]\n"
            "        bank.touch(request)\n"
            "        return True\n"
        )
        findings = run_one(PredicatePurityRule(), source)
        assert any(f.detail == "mutating-call:bank.touch" for f in findings)

    def test_non_predicate_mutation_ignored(self):
        source = (
            "class Cache:\n"
            "    def send(self, request):\n"
            "        self.accepted += 1\n"
            "        return True\n"
        )
        assert run_one(PredicatePurityRule(), source) == []


# ---------------------------------------------------------------------------
# VX003 counter discipline


COUNTER_SCHEMA_PREFIX = (
    "class Comp:\n"
    "    COUNTERS = frozenset({'hits', 'misses'})\n"
)


class TestCounterDisciplineRule:
    def test_seeded_defect_misspelled_counter_key(self):
        # Seeded defect #2: a typo'd counter key not in any schema.
        source = COUNTER_SCHEMA_PREFIX + (
            "    def charge(self):\n"
            "        self.perf.incr('hist')\n"
        )
        findings = run_one(CounterDisciplineRule(), source)
        assert [f.detail for f in findings] == ["undeclared:hist"]

    def test_declared_keys_clean(self):
        source = COUNTER_SCHEMA_PREFIX + (
            "    def charge(self):\n"
            "        self.perf.incr('hits')\n"
            "        counters = self.perf._counters\n"
            "        counters['misses'] += 1\n"
        )
        assert run_one(CounterDisciplineRule(), source) == []

    def test_ifexp_key_resolves_both_arms(self):
        source = COUNTER_SCHEMA_PREFIX + (
            "    def charge(self, hit):\n"
            "        counters = self.perf._counters\n"
            "        counters['hits' if hit else 'misses'] += 1\n"
            "        counters['hits' if hit else 'wrong'] += 1\n"
        )
        findings = run_one(CounterDisciplineRule(), source)
        assert [f.detail for f in findings] == ["undeclared:wrong"]

    def test_variable_key_flagged(self):
        source = COUNTER_SCHEMA_PREFIX + (
            "    def charge(self, key):\n"
            "        counters = self.perf._counters\n"
            "        counters[key] += 1\n"
        )
        findings = run_one(CounterDisciplineRule(), source)
        assert [f.detail for f in findings] == ["non-literal:key"]

    def test_plain_assignment_flagged(self):
        source = COUNTER_SCHEMA_PREFIX + (
            "    def clobber(self):\n"
            "        counters = self.perf._counters\n"
            "        counters['hits'] = 0\n"
        )
        findings = run_one(CounterDisciplineRule(), source)
        assert findings and findings[0].detail.startswith("assign:")

    def test_schema_collected_across_modules(self):
        # Charging a sibling component's declared counter is legitimate.
        schema_mod = make_module(
            "class Dcache:\n    COUNTERS = frozenset({'attempts'})\n",
            "repro.cache.schema_fixture",
        )
        user_mod = make_module(
            "class Core:\n"
            "    def replay(self):\n"
            "        self.dcache.perf.incr('attempts')\n",
            "repro.core.user_fixture",
        )
        result = run_rules([schema_mod, user_mod], rules=[CounterDisciplineRule()])
        assert result.findings == []


# ---------------------------------------------------------------------------
# VX004 hot-path allocation


class TestHotPathAllocationRule:
    def test_comprehension_lambda_fstring_nparray_flagged(self):
        source = (
            "import numpy as np\n"
            "from repro.common.perf import hot_path\n"
            "class Core:\n"
            "    @hot_path\n"
            "    def drain(self, xs):\n"
            "        ys = [x for x in xs]\n"
            "        f = lambda q: q\n"
            "        label = f'{xs}'\n"
            "        buf = np.zeros(4, dtype=np.uint32)\n"
            "        return ys, f, label, buf\n"
        )
        findings = run_one(HotPathAllocationRule(), source)
        kinds = {f.detail.split(":")[0] for f in findings}
        assert kinds == {"comp", "lambda", "fstring", "nparray"}

    def test_untagged_function_unconstrained(self):
        source = (
            "class Core:\n"
            "    def precompute(self, xs):\n"
            "        return [x for x in xs]\n"
        )
        assert run_one(HotPathAllocationRule(), source) == []

    def test_tagged_allocation_free_function_clean(self):
        source = (
            "from repro.common.perf import hot_path\n"
            "class Core:\n"
            "    @hot_path\n"
            "    def probe(self, line):\n"
            "        return line in self.warm\n"
        )
        assert run_one(HotPathAllocationRule(), source) == []


# ---------------------------------------------------------------------------
# VX005 dtype discipline


class TestDtypeDisciplineRule:
    def test_bare_int_into_lane_vector_flagged(self):
        source = (
            "import numpy as np\n"
            "def shift(lanes: np.ndarray):\n"
            "    return lanes + 5\n"
        )
        findings = run_one(DtypeDisciplineRule(), source, "repro.arch.fixture")
        assert any(f.detail.startswith("bare-int:lanes:Add:5") for f in findings)

    def test_wrapped_int_clean(self):
        source = (
            "import numpy as np\n"
            "def shift(lanes: np.ndarray):\n"
            "    return lanes + np.uint32(5)\n"
        )
        assert run_one(DtypeDisciplineRule(), source, "repro.arch.fixture") == []

    def test_constructor_without_dtype_flagged(self):
        source = "import numpy as np\nTABLE = np.zeros(32)\n"
        findings = run_one(DtypeDisciplineRule(), source, "repro.engine.fixture")
        assert any(f.detail == "implicit-dtype:np.zeros" for f in findings)

    def test_constructor_with_dtype_clean(self):
        source = "import numpy as np\nTABLE = np.zeros(32, dtype=np.uint32)\n"
        assert run_one(DtypeDisciplineRule(), source, "repro.engine.fixture") == []

    def test_out_of_scope_cache_module_untouched(self):
        source = "import numpy as np\nTABLE = np.zeros(32)\n"
        assert run_one(DtypeDisciplineRule(), source, "repro.cache.fixture") == []


# ---------------------------------------------------------------------------
# VX006 state inventory


STATEFUL_SOURCE = (
    "class Widget:\n"
    "    def __init__(self):\n"
    "        self.count = 0\n"
    "        self.items = []\n"
    "    def bump(self):\n"
    "        self.count += 1\n"
)


class TestStateInventoryRule:
    def test_collect_state_catalogues_attributes(self):
        info = make_module(STATEFUL_SOURCE)
        inventory = collect_state([info])
        assert inventory == {"repro.cache.fixture.Widget": ["count", "items"]}

    def test_matching_inventory_clean(self):
        rule = StateInventoryRule(
            inventory={"repro.cache.fixture.Widget": ["count", "items"]}
        )
        assert run_one(rule, STATEFUL_SOURCE) == []

    def test_undeclared_attribute_flagged(self):
        rule = StateInventoryRule(inventory={"repro.cache.fixture.Widget": ["count"]})
        findings = run_one(rule, STATEFUL_SOURCE)
        assert [f.detail for f in findings] == [
            "undeclared:repro.cache.fixture.Widget.items"
        ]

    def test_stale_inventory_entry_flagged(self):
        rule = StateInventoryRule(
            inventory={"repro.cache.fixture.Widget": ["count", "items", "ghost"]}
        )
        findings = run_one(rule, STATEFUL_SOURCE)
        assert [f.detail for f in findings] == [
            "stale:repro.cache.fixture.Widget.ghost"
        ]

    def test_unknown_component_flagged(self):
        rule = StateInventoryRule(inventory={})
        findings = run_one(rule, STATEFUL_SOURCE)
        assert [f.detail for f in findings] == [
            "unknown-component:repro.cache.fixture.Widget"
        ]


# ---------------------------------------------------------------------------
# VX007 snapshot coverage


class TestSnapshotCoverageRule:
    def test_covered_attributes_clean(self):
        source = (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "        self.items = []\n"
            "    def snapshot(self):\n"
            "        return {'count': self.count, 'items': list(self.items)}\n"
            "    def restore(self, payload):\n"
            "        self.count = payload['count']\n"
            "        self.items = list(payload['items'])\n"
        )
        assert run_one(SnapshotCoverageRule(), source) == []

    def test_uncovered_attribute_flagged(self):
        # Seeded serializer drift: `pending` is mutable state the snapshot
        # silently drops — exactly the divergence class VX007 exists for.
        source = (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "        self.pending = []\n"
            "    def snapshot(self):\n"
            "        return {'count': self.count}\n"
            "    def restore(self, payload):\n"
            "        self.count = payload['count']\n"
        )
        findings = run_one(SnapshotCoverageRule(), source)
        assert [f.detail for f in findings] == [
            "uncovered:repro.cache.fixture.Widget.pending"
        ]

    def test_excluded_attribute_clean(self):
        source = (
            "class Widget:\n"
            "    SNAPSHOT_EXCLUDED = frozenset({'config'})\n"
            "    def __init__(self, config):\n"
            "        self.config = config\n"
            "        self.count = 0\n"
            "    def snapshot(self):\n"
            "        return {'count': self.count}\n"
            "    def restore(self, payload):\n"
            "        self.count = payload['count']\n"
        )
        assert run_one(SnapshotCoverageRule(), source) == []

    def test_helper_method_prefix_counts(self):
        # Split serializers (_snapshot_x/_restore_x) get coverage credit.
        source = (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.barriers = {}\n"
            "    def snapshot(self):\n"
            "        return {'barriers': self._snapshot_barriers()}\n"
            "    def restore(self, payload):\n"
            "        self._restore_barriers(payload['barriers'])\n"
            "    def _snapshot_barriers(self):\n"
            "        return dict(self.barriers)\n"
            "    def _restore_barriers(self, payload):\n"
            "        self.barriers = dict(payload)\n"
        )
        assert run_one(SnapshotCoverageRule(), source) == []

    def test_underscore_payload_key_credits_attribute(self):
        # Payload keys conventionally drop the leading underscore.
        source = (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self._next = 0\n"
            "    def snapshot(self):\n"
            "        return {'next': self._next}\n"
            "    def restore(self, payload):\n"
            "        self._next = payload['next']\n"
        )
        assert run_one(SnapshotCoverageRule(), source) == []

    def test_stateful_class_without_serializer_flagged(self):
        findings = run_one(SnapshotCoverageRule(), STATEFUL_SOURCE)
        assert [f.detail for f in findings] == [
            "no-serializer:repro.cache.fixture.Widget"
        ]

    def test_out_of_scope_module_untouched(self):
        findings = run_one(
            SnapshotCoverageRule(), STATEFUL_SOURCE, module="repro.kernels.fixture"
        )
        assert findings == []


# ---------------------------------------------------------------------------
# VX008 trace-emission guard


HOT_PREFIX = "from repro.common.perf import hot_path\n"


class TestTraceEmissionGuardRule:
    def test_unguarded_hot_path_emit_flagged(self):
        source = HOT_PREFIX + (
            "class Cache:\n"
            "    @hot_path\n"
            "    def send(self, request):\n"
            "        self.trace.emit(self.cycle, 0, 0, 'dcache', 'hit', None)\n"
            "        return True\n"
        )
        findings = run_one(TraceEmissionGuardRule(), source)
        assert [f.detail for f in findings] == ["unguarded:self.trace:1"]

    def test_guarded_local_idiom_clean(self):
        # The canonical hoist-and-guard idiom the instrumented paths use.
        source = HOT_PREFIX + (
            "class Cache:\n"
            "    @hot_path\n"
            "    def send(self, request):\n"
            "        trace = self.trace\n"
            "        if trace is not None:\n"
            "            trace.emit(self.cycle, 0, 0, 'dcache', 'hit', None)\n"
            "        return True\n"
        )
        assert run_one(TraceEmissionGuardRule(), source) == []

    def test_guarded_attribute_receiver_clean(self):
        source = HOT_PREFIX + (
            "class Cache:\n"
            "    @hot_path\n"
            "    def send(self, request):\n"
            "        if self.trace is not None:\n"
            "            self.trace.emit(self.cycle, 0, 0, 'dcache', 'hit', None)\n"
            "        return True\n"
        )
        assert run_one(TraceEmissionGuardRule(), source) == []

    def test_guard_on_other_name_does_not_count(self):
        # An if that tests something unrelated must not launder the emit.
        source = HOT_PREFIX + (
            "class Cache:\n"
            "    @hot_path\n"
            "    def send(self, request, hit):\n"
            "        if hit:\n"
            "            self.trace.emit(self.cycle, 0, 0, 'dcache', 'hit', None)\n"
            "        return True\n"
        )
        findings = run_one(TraceEmissionGuardRule(), source)
        assert [f.detail for f in findings] == ["unguarded:self.trace:2"]

    def test_cold_function_unconstrained(self):
        # Off the hot path, an unconditional emit is fine (setup/teardown).
        source = (
            "class Cache:\n"
            "    def flush(self):\n"
            "        self.trace.emit(self.cycle, 0, 0, 'dcache', 'flush', None)\n"
        )
        assert run_one(TraceEmissionGuardRule(), source) == []

    def test_non_trace_emit_ignored(self):
        # `.emit()` on a non-trace receiver (e.g. an event queue) is not ours.
        source = HOT_PREFIX + (
            "class Core:\n"
            "    @hot_path\n"
            "    def tick(self):\n"
            "        self.events.emit('tick')\n"
        )
        assert run_one(TraceEmissionGuardRule(), source) == []

    def test_elif_guard_credits_its_own_branch(self):
        source = HOT_PREFIX + (
            "class Cache:\n"
            "    @hot_path\n"
            "    def send(self, request, trace):\n"
            "        if request is None:\n"
            "            return False\n"
            "        elif trace is not None:\n"
            "            trace.emit(self.cycle, 0, 0, 'dcache', 'hit', None)\n"
            "        return True\n"
        )
        assert run_one(TraceEmissionGuardRule(), source) == []


# ---------------------------------------------------------------------------
# Framework behaviour: suppressions, baselines, fingerprints


class TestSuppressionAndBaseline:
    def test_inline_suppression_silences_one_line(self):
        source = (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.pending = set()\n"
            "    def drain(self):\n"
            "        a = list(self.pending)  # vxlint: disable=VX001\n"
            "        b = list(self.pending)\n"
            "        return a, b\n"
        )
        info = make_module(source)
        result = run_rules([info], rules=[DeterminismRule()])
        assert result.suppressed_count == 1
        assert len(result.findings) == 1

    def test_suppression_is_rule_specific(self):
        source = (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.pending = set()\n"
            "    def drain(self):\n"
            "        return list(self.pending)  # vxlint: disable=VX002\n"
        )
        info = make_module(source)
        result = run_rules([info], rules=[DeterminismRule()])
        assert len(result.findings) == 1

    def test_baseline_matches_by_fingerprint_not_line(self, tmp_path):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        info = make_module(source, "repro.core.baselined_fixture")
        first = run_rules([info], rules=[DeterminismRule()])
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(first.findings, baseline_path)
        baseline = Baseline.load(baseline_path)

        # Shift every line down: the baseline must still match.
        shifted = make_module("# pad\n" + source, "repro.core.baselined_fixture")
        second = run_rules([shifted], rules=[DeterminismRule()], baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "does_not_exist.json")
        assert baseline.entries == {}

    def test_module_name_for_src_anchor(self):
        assert module_name_for(Path("src/repro/cache/cache.py")) == "repro.cache.cache"
        assert module_name_for(Path("src/repro/analysis/__init__.py")) == "repro.analysis"


# ---------------------------------------------------------------------------
# Repo gate: the committed tree is clean


@pytest.fixture(scope="module")
def repo_modules():
    return load_modules([REPO_ROOT / "src"])


class TestRepoIsClean:
    def test_vxlint_clean_against_committed_baseline(self, repo_modules):
        baseline = Baseline.load(REPO_ROOT / "vxlint_baseline.json")
        result = run_rules(repo_modules, baseline=baseline)
        assert result.findings == [], "\n" + "\n".join(
            f.render() for f in result.findings
        )

    def test_every_baseline_entry_is_justified_and_live(self, repo_modules):
        baseline = Baseline.load(REPO_ROOT / "vxlint_baseline.json")
        assert baseline.entries, "baseline exists and carries entries"
        for fingerprint, justification in baseline.entries.items():
            assert justification and "TODO" not in justification, fingerprint
        # No dead entries: every baselined fingerprint still occurs.
        result = run_rules(repo_modules, baseline=Baseline())
        live = {f.fingerprint for f in result.findings}
        dead = set(baseline.entries) - live
        assert not dead, f"baseline entries no longer needed: {sorted(dead)}"

    def test_state_inventory_is_current(self, repo_modules):
        import json

        inventory_path = (
            REPO_ROOT / "src" / "repro" / "analysis" / "state_inventory.json"
        )
        committed = json.loads(inventory_path.read_text())["components"]
        assert committed == collect_state(repo_modules)

    def test_hot_path_marker_is_zero_overhead(self):
        from repro.common.perf import hot_path

        def sample(x):
            return x + 1

        tagged = hot_path(sample)
        assert tagged is sample
        assert tagged.__hot_path__ is True
