"""Tests for the non-blocking multi-banked cache subsystem."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.bank import CacheBank
from repro.cache.cache import CacheRequest, NonBlockingCache
from repro.cache.mshr import Mshr
from repro.cache.sharedmem import SharedMemory, is_shared_address, shared_mem_window
from repro.common.config import CacheConfig


# -- MSHR --------------------------------------------------------------------------------


def test_mshr_allocate_and_merge():
    mshr = Mshr(capacity=2)
    entry = mshr.allocate(0x10, "a")
    assert entry is not None and not entry.fill_issued
    merged = mshr.allocate(0x10, "b")
    assert merged is entry
    assert mshr.merged == 1
    assert mshr.release(0x10) == ["a", "b"]
    assert len(mshr) == 0


def test_mshr_capacity_and_early_full():
    mshr = Mshr(capacity=2)
    assert not mshr.almost_full
    mshr.allocate(1, "a")
    assert mshr.almost_full
    mshr.allocate(2, "b")
    assert mshr.full
    assert mshr.allocate(3, "c") is None


def test_mshr_release_unknown_line_is_empty():
    assert Mshr(4).release(0x99) == []


def test_mshr_capacity_one_is_not_permanently_almost_full():
    """Regression: ``capacity - 1 == 0`` made an *empty* capacity-1 table
    signal almost-full, so every read was refused forever."""
    mshr = Mshr(capacity=1)
    assert not mshr.almost_full
    assert mshr.allocate(0x10, "a") is not None
    assert mshr.almost_full and mshr.full
    assert mshr.release(0x10) == ["a"]
    assert not mshr.almost_full


def test_cache_with_capacity_one_mshr_still_serves_reads():
    """End-to-end: a single-entry MSHR must accept a read miss, fill it and
    respond (the timing driver's watchdog used to fire here)."""
    cache, lower = _make_cache(mshr_size=1, num_banks=1)
    assert cache.send(CacheRequest(address=0x80, tag="r"))
    assert lower.fills == [cache.line_address(0x80)]
    cache.fill(cache.line_address(0x80))
    responses = []
    for _ in range(4):
        responses.extend(cache.tick())
    assert [resp.tag for resp in responses] == ["r"]


@settings(max_examples=200, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=6),
    events=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=7)),
        max_size=60,
    ),
)
def test_mshr_merge_replay_invariants(capacity, events):
    """Property: every allocated request replays exactly once, merges are
    counted exactly, and occupancy never exceeds the capacity."""
    mshr = Mshr(capacity)
    accepted = {}  # line -> list of outstanding (unreleased) request ids
    released = []
    merged = 0
    allocations = 0
    next_id = 0
    for is_release, line in events:
        if is_release:
            expected = accepted.pop(line, [])
            replayed = mshr.release(line)
            assert replayed == expected
            released.extend(replayed)
        else:
            request = next_id
            entry = mshr.allocate(line, request)
            if entry is None:
                # Refused: table full and the line has no entry to merge into.
                assert len(mshr) == capacity
                assert line not in accepted
                continue
            next_id += 1
            if len(entry.waiting) > 1:
                merged += 1
            else:
                allocations += 1
            accepted.setdefault(line, []).append(request)
        assert len(mshr) <= capacity
        assert mshr.peak_occupancy <= capacity
        assert len(mshr) == len(accepted)
    assert mshr.merged == merged
    assert mshr.allocations == allocations
    # Drain everything: each accepted request is replayed exactly once.
    for line in list(accepted):
        released.extend(mshr.release(line))
    assert sorted(released) == list(range(next_id))


# -- CacheBank ---------------------------------------------------------------------------


def test_bank_install_probe_and_lru_eviction():
    config = CacheConfig(size=1024, line_size=64, num_banks=1, num_ways=2)
    bank = CacheBank(0, config)
    lines = [0, config.num_sets, 2 * config.num_sets]  # all map to set 0
    assert not bank.probe(lines[0])
    bank.install(lines[0])
    bank.install(lines[1])
    bank.touch(lines[0])  # make line 0 most recently used
    evicted = bank.install(lines[2])
    assert evicted == lines[1]
    assert bank.probe(lines[0]) and bank.probe(lines[2]) and not bank.probe(lines[1])


def test_bank_response_scheduling_honors_hit_latency():
    config = CacheConfig(size=1024, line_size=64, num_banks=1, hit_latency=3)
    bank = CacheBank(0, config)
    from repro.cache.bank import BankRequest

    bank.schedule_response(BankRequest(address=0, is_write=False, tag="t"), cycle=10, hit=True)
    assert bank.collect_responses(12) == []
    responses = bank.collect_responses(13)
    assert len(responses) == 1 and responses[0][0].tag == "t"


# -- NonBlockingCache ----------------------------------------------------------------------


class _AlwaysReadyLower:
    """Lower level that accepts everything and records fills."""

    def __init__(self):
        self.fills = []
        self.writes = []

    def request_fill(self, cache, line_address):
        self.fills.append(line_address)
        return True

    def request_write(self, cache, address):
        self.writes.append(address)
        return True


def _make_cache(num_ports=1, num_banks=4, mshr_size=4):
    config = CacheConfig(
        size=4 * 1024, line_size=64, num_banks=num_banks, num_ports=num_ports,
        mshr_size=mshr_size, hit_latency=2,
    )
    lower = _AlwaysReadyLower()
    return NonBlockingCache("dcache", config, lower=lower), lower


def test_read_miss_then_fill_then_hit():
    cache, lower = _make_cache()
    assert cache.send(CacheRequest(address=0x100, tag="r0"))
    assert lower.fills == [cache.line_address(0x100)]
    # No response until the fill returns.
    for _ in range(5):
        assert cache.tick() == []
    cache.fill(cache.line_address(0x100))
    responses = []
    for _ in range(3):
        responses.extend(cache.tick())
    assert [resp.tag for resp in responses] == ["r0"]
    # Second access to the same line hits.
    assert cache.send(CacheRequest(address=0x104, tag="r1"))
    responses = []
    for _ in range(3):
        responses.extend(cache.tick())
    assert responses and responses[0].hit
    assert cache.hit_rate > 0


def test_miss_to_same_line_merges_in_mshr():
    cache, lower = _make_cache()
    assert cache.send(CacheRequest(address=0x200, tag="a"))
    cache.tick()
    assert cache.send(CacheRequest(address=0x204, tag="b"))
    assert len(lower.fills) == 1  # second miss merged
    cache.fill(cache.line_address(0x200))
    tags = []
    for _ in range(4):
        tags.extend(resp.tag for resp in cache.tick())
    assert set(tags) == {"a", "b"}


def test_bank_conflict_with_single_port():
    cache, _ = _make_cache(num_ports=1)
    line = 64 * cache.config.num_banks  # two addresses on different lines, same bank
    assert cache.send(CacheRequest(address=0, tag="a"))
    assert not cache.send(CacheRequest(address=line, tag="b"))
    assert cache.perf.get("bank_conflicts") == 1
    assert cache.bank_utilization < 1.0


def test_virtual_ports_coalesce_same_line_only():
    cache, _ = _make_cache(num_ports=2)
    # Same line: both accepted in one cycle.
    assert cache.send(CacheRequest(address=0x0, tag="a"))
    assert cache.send(CacheRequest(address=0x4, tag="b"))
    # Third same-line request exceeds the two virtual ports.
    assert not cache.send(CacheRequest(address=0x8, tag="c"))
    # Different line in the same bank still conflicts.
    other_line = 64 * cache.config.num_banks
    assert not cache.send(CacheRequest(address=other_line, tag="d"))


def test_requests_to_distinct_banks_proceed_in_parallel():
    cache, _ = _make_cache(num_ports=1, num_banks=4)
    for bank in range(4):
        assert cache.send(CacheRequest(address=bank * 64, tag=bank))
    assert cache.perf.get("bank_conflicts") == 0
    assert cache.bank_utilization == 1.0


def test_write_through_forwards_to_lower_level():
    cache, lower = _make_cache()
    assert cache.send(CacheRequest(address=0x40, is_write=True, tag="w"))
    assert lower.writes == [0x40]
    responses = []
    for _ in range(3):
        responses.extend(cache.tick())
    assert [resp.tag for resp in responses] == ["w"]


def test_mshr_early_full_backpressures_reads():
    cache, _ = _make_cache(mshr_size=2, num_banks=1)
    assert cache.send(CacheRequest(address=0 * 64, tag=0))
    cache.tick()
    # The MSHR is now almost full (capacity 2, one used): next miss refused.
    assert not cache.send(CacheRequest(address=1 * 64, tag=1))
    assert cache.perf.get("mshr_stalls") >= 1


class _RejectingLower:
    def request_fill(self, cache, line_address):
        return False

    def request_write(self, cache, address):
        return False


def test_lower_level_backpressure_rejects_request():
    config = CacheConfig(size=4 * 1024, num_banks=4)
    cache = NonBlockingCache("dcache", config, lower=_RejectingLower())
    assert not cache.send(CacheRequest(address=0x300, tag="x"))
    assert cache.perf.get("memq_stalls") == 1


def test_busy_reflects_outstanding_work():
    cache, _ = _make_cache()
    assert not cache.busy
    cache.send(CacheRequest(address=0x500, tag="x"))
    assert cache.busy


# -- SharedMemory ----------------------------------------------------------------------------


def test_shared_memory_window_and_membership():
    base, limit = shared_mem_window(core_id=1)
    assert is_shared_address(base)
    assert not is_shared_address(0x1000_0000)
    assert limit - base == 0x1_0000


def test_shared_memory_bank_conflicts_serialize():
    smem = SharedMemory(core_id=0, size=8 * 1024, num_banks=4, latency=1)
    base = smem.base
    assert smem.send(base + 0, False, "a")
    assert smem.send(base + 4, False, "b")  # different bank
    assert not smem.send(base + 16, False, "c")  # bank 0 again -> conflict
    done = smem.tick()
    assert {resp.tag for resp in done} == {"a", "b"}
    assert smem.perf.get("bank_conflicts") == 1
