"""Tests for the non-blocking multi-banked cache subsystem."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.bank import CacheBank
from repro.cache.cache import CacheRequest, NonBlockingCache
from repro.cache.mshr import Mshr
from repro.cache.sharedmem import SharedMemory, is_shared_address, shared_mem_window
from repro.common.config import CacheConfig


# -- MSHR --------------------------------------------------------------------------------


def test_mshr_allocate_and_merge():
    mshr = Mshr(capacity=2)
    entry = mshr.allocate(0x10, "a")
    assert entry is not None and not entry.fill_issued
    merged = mshr.allocate(0x10, "b")
    assert merged is entry
    assert mshr.merged == 1
    assert mshr.release(0x10) == ["a", "b"]
    assert len(mshr) == 0


def test_mshr_capacity_and_early_full():
    mshr = Mshr(capacity=2)
    assert not mshr.almost_full
    mshr.allocate(1, "a")
    assert mshr.almost_full
    mshr.allocate(2, "b")
    assert mshr.full
    assert mshr.allocate(3, "c") is None


def test_mshr_release_unknown_line_is_empty():
    assert Mshr(4).release(0x99) == []


def test_mshr_capacity_one_is_not_permanently_almost_full():
    """Regression: ``capacity - 1 == 0`` made an *empty* capacity-1 table
    signal almost-full, so every read was refused forever."""
    mshr = Mshr(capacity=1)
    assert not mshr.almost_full
    assert mshr.allocate(0x10, "a") is not None
    assert mshr.almost_full and mshr.full
    assert mshr.release(0x10) == ["a"]
    assert not mshr.almost_full


def test_cache_with_capacity_one_mshr_still_serves_reads():
    """End-to-end: a single-entry MSHR must accept a read miss, fill it and
    respond (the timing driver's watchdog used to fire here)."""
    cache, lower = _make_cache(mshr_size=1, num_banks=1)
    assert cache.send(CacheRequest(address=0x80, tag="r"))
    assert lower.fills == [cache.line_address(0x80)]
    cache.fill(cache.line_address(0x80))
    responses = []
    for _ in range(4):
        responses.extend(cache.tick())
    assert [resp.tag for resp in responses] == ["r"]


@settings(max_examples=200, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=6),
    events=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=7)),
        max_size=60,
    ),
)
def test_mshr_merge_replay_invariants(capacity, events):
    """Property: every allocated request replays exactly once, merges are
    counted exactly, and occupancy never exceeds the capacity."""
    mshr = Mshr(capacity)
    accepted = {}  # line -> list of outstanding (unreleased) request ids
    released = []
    merged = 0
    allocations = 0
    next_id = 0
    for is_release, line in events:
        if is_release:
            expected = accepted.pop(line, [])
            replayed = mshr.release(line)
            assert replayed == expected
            released.extend(replayed)
        else:
            request = next_id
            entry = mshr.allocate(line, request)
            if entry is None:
                # Refused: table full and the line has no entry to merge into.
                assert len(mshr) == capacity
                assert line not in accepted
                continue
            next_id += 1
            if len(entry.waiting) > 1:
                merged += 1
            else:
                allocations += 1
            accepted.setdefault(line, []).append(request)
        assert len(mshr) <= capacity
        assert mshr.peak_occupancy <= capacity
        assert len(mshr) == len(accepted)
        # The early-full signal is a maintained attribute (hot request paths
        # read it per attempt); it must track occupancy exactly.
        assert mshr.almost_full == (len(mshr) >= max(capacity - 1, 1))
    assert mshr.merged == merged
    assert mshr.allocations == allocations
    # Drain everything: each accepted request is replayed exactly once.
    for line in list(accepted):
        released.extend(mshr.release(line))
    assert sorted(released) == list(range(next_id))


# -- CacheBank ---------------------------------------------------------------------------


def test_bank_install_probe_and_lru_eviction():
    config = CacheConfig(size=1024, line_size=64, num_banks=1, num_ways=2)
    bank = CacheBank(0, config)
    lines = [0, config.num_sets, 2 * config.num_sets]  # all map to set 0
    assert not bank.probe(lines[0])
    bank.install(lines[0])
    bank.install(lines[1])
    bank.touch(lines[0])  # make line 0 most recently used
    evicted = bank.install(lines[2])
    assert evicted == lines[1]
    assert bank.probe(lines[0]) and bank.probe(lines[2]) and not bank.probe(lines[1])


def test_bank_response_scheduling_honors_hit_latency():
    config = CacheConfig(size=1024, line_size=64, num_banks=1, hit_latency=3)
    bank = CacheBank(0, config)
    from repro.cache.bank import BankRequest

    bank.schedule_response(BankRequest(address=0, is_write=False, tag="t"), cycle=10, hit=True)
    assert bank.collect_responses(12) == []
    responses = bank.collect_responses(13)
    assert len(responses) == 1 and responses[0][0].tag == "t"


# -- NonBlockingCache ----------------------------------------------------------------------


class _AlwaysReadyLower:
    """Lower level that accepts everything and records fills."""

    def __init__(self):
        self.fills = []
        self.writes = []

    def request_fill(self, cache, line_address):
        self.fills.append(line_address)
        return True

    def request_write(self, cache, address):
        self.writes.append(address)
        return True


def _make_cache(num_ports=1, num_banks=4, mshr_size=4):
    config = CacheConfig(
        size=4 * 1024, line_size=64, num_banks=num_banks, num_ports=num_ports,
        mshr_size=mshr_size, hit_latency=2,
    )
    lower = _AlwaysReadyLower()
    return NonBlockingCache("dcache", config, lower=lower), lower


def test_read_miss_then_fill_then_hit():
    cache, lower = _make_cache()
    assert cache.send(CacheRequest(address=0x100, tag="r0"))
    assert lower.fills == [cache.line_address(0x100)]
    # No response until the fill returns.
    for _ in range(5):
        assert cache.tick() == []
    cache.fill(cache.line_address(0x100))
    responses = []
    for _ in range(3):
        responses.extend(cache.tick())
    assert [resp.tag for resp in responses] == ["r0"]
    # Second access to the same line hits.
    assert cache.send(CacheRequest(address=0x104, tag="r1"))
    responses = []
    for _ in range(3):
        responses.extend(cache.tick())
    assert responses and responses[0].hit
    assert cache.hit_rate > 0


def test_miss_to_same_line_merges_in_mshr():
    cache, lower = _make_cache()
    assert cache.send(CacheRequest(address=0x200, tag="a"))
    cache.tick()
    assert cache.send(CacheRequest(address=0x204, tag="b"))
    assert len(lower.fills) == 1  # second miss merged
    cache.fill(cache.line_address(0x200))
    tags = []
    for _ in range(4):
        tags.extend(resp.tag for resp in cache.tick())
    assert set(tags) == {"a", "b"}


def test_bank_conflict_with_single_port():
    cache, _ = _make_cache(num_ports=1)
    line = 64 * cache.config.num_banks  # two addresses on different lines, same bank
    assert cache.send(CacheRequest(address=0, tag="a"))
    assert not cache.send(CacheRequest(address=line, tag="b"))
    assert cache.perf.get("bank_conflicts") == 1
    assert cache.bank_utilization < 1.0


def test_virtual_ports_coalesce_same_line_only():
    cache, _ = _make_cache(num_ports=2)
    # Same line: both accepted in one cycle.
    assert cache.send(CacheRequest(address=0x0, tag="a"))
    assert cache.send(CacheRequest(address=0x4, tag="b"))
    # Third same-line request exceeds the two virtual ports.
    assert not cache.send(CacheRequest(address=0x8, tag="c"))
    # Different line in the same bank still conflicts.
    other_line = 64 * cache.config.num_banks
    assert not cache.send(CacheRequest(address=other_line, tag="d"))


def test_requests_to_distinct_banks_proceed_in_parallel():
    cache, _ = _make_cache(num_ports=1, num_banks=4)
    for bank in range(4):
        assert cache.send(CacheRequest(address=bank * 64, tag=bank))
    assert cache.perf.get("bank_conflicts") == 0
    assert cache.bank_utilization == 1.0


def test_write_through_forwards_to_lower_level():
    cache, lower = _make_cache()
    assert cache.send(CacheRequest(address=0x40, is_write=True, tag="w"))
    assert lower.writes == [0x40]
    responses = []
    for _ in range(3):
        responses.extend(cache.tick())
    assert [resp.tag for resp in responses] == ["w"]


def test_mshr_early_full_backpressures_reads():
    cache, _ = _make_cache(mshr_size=2, num_banks=1)
    assert cache.send(CacheRequest(address=0 * 64, tag=0))
    cache.tick()
    # The MSHR is now almost full (capacity 2, one used): next miss refused.
    assert not cache.send(CacheRequest(address=1 * 64, tag=1))
    assert cache.perf.get("mshr_stalls") >= 1


class _RejectingLower:
    def request_fill(self, cache, line_address):
        return False

    def request_write(self, cache, address):
        return False


def test_lower_level_backpressure_rejects_request():
    config = CacheConfig(size=4 * 1024, num_banks=4)
    cache = NonBlockingCache("dcache", config, lower=_RejectingLower())
    assert not cache.send(CacheRequest(address=0x300, tag="x"))
    assert cache.perf.get("memq_stalls") == 1


def test_busy_reflects_outstanding_work():
    cache, _ = _make_cache()
    assert not cache.busy
    cache.send(CacheRequest(address=0x500, tag="x"))
    assert cache.busy


# -- SharedMemory ----------------------------------------------------------------------------


def test_shared_memory_window_and_membership():
    base, limit = shared_mem_window(core_id=1)
    assert is_shared_address(base)
    assert not is_shared_address(0x1000_0000)
    assert limit - base == 0x1_0000


def test_shared_memory_bank_conflicts_serialize():
    smem = SharedMemory(core_id=0, size=8 * 1024, num_banks=4, latency=1)
    base = smem.base
    assert smem.send(base + 0, False, "a")
    assert smem.send(base + 4, False, "b")  # different bank
    assert not smem.send(base + 16, False, "c")  # bank 0 again -> conflict
    done = smem.tick()
    assert {resp.tag for resp in done} == {"a", "b"}
    assert smem.perf.get("bank_conflicts") == 1


# -- batched request path: bit-identical to the per-lane loop ------------------------------


class _ScriptedLower:
    """Lower level refusing every ``refuse_every``-th request (non-sticky).

    Deterministic, so two caches driven with identical request sequences see
    identical accept/refuse patterns — the property the batched/per-lane
    equivalence tests rely on.
    """

    sticky_refusal = False

    def __init__(self, refuse_every=3):
        self.refuse_every = refuse_every
        self.calls = 0
        self.fills = []
        self.writes = []

    def _accept(self):
        self.calls += 1
        return self.refuse_every == 0 or self.calls % self.refuse_every != 0

    def request_fill(self, cache, line_address):
        if not self._accept():
            return False
        self.fills.append(line_address)
        return True

    def request_write(self, cache, address):
        if not self._accept():
            return False
        self.writes.append(address)
        return True


class _StickyQueueLower:
    """Bounded shared queue: refuses once full, for the rest of the cycle.

    Mirrors the DRAM port contract: ``sticky_refusal`` promises that one
    refusal implies every further request this cycle is refused too, and
    ``note_skipped_refusal`` charges exactly what a real refused call would
    have (here: the ``rejected`` tally).
    """

    sticky_refusal = True

    def __init__(self, capacity):
        self.capacity = capacity
        self.queue = []
        self.rejected = 0

    def _accept(self, item):
        if len(self.queue) >= self.capacity:
            self.rejected += 1
            return False
        self.queue.append(item)
        return True

    def request_fill(self, cache, line_address):
        return self._accept(("fill", line_address))

    def request_write(self, cache, address):
        return self._accept(("write", address))

    def note_skipped_refusal(self, count=1):
        self.rejected += count

    def drain(self):
        released, self.queue = self.queue, []
        return released


def _perlane_reference(cache, entries, budget, is_write, tag):
    """The timing core's per-lane retry loop, verbatim semantics."""
    refused = []
    accepted = 0
    for entry in entries:
        if budget <= 0:
            refused.append(entry)
            continue
        if cache.send_raw(entry[0], is_write, tag):
            accepted += 1
            budget -= 1
        else:
            refused.append(entry)
    return accepted, refused, budget


def _entries_for(cache, addresses):
    line_size = cache.config.line_size
    num_banks = cache.config.num_banks
    return [
        (address, address // line_size, (address // line_size) % num_banks, False)
        for address in addresses
    ]


def _cache_state(cache):
    return {
        "accepts": dict(cache._accepts_this_cycle),
        "mshr_len": [len(bank.mshr) for bank in cache.banks],
        "mshr_lines": [sorted(bank.mshr._entries) for bank in cache.banks],
        "mshr_almost_full": [bank.mshr.almost_full for bank in cache.banks],
        "counters": cache.perf.as_dict(),
    }


def _drain_responses(cache, cycles=6):
    stream = []
    for _ in range(cycles):
        for resp in cache.tick():
            stream.append((resp.tag, resp.address, resp.is_write, resp.hit, resp.cycle))
    return stream


_cache_rounds = st.lists(
    st.tuples(
        st.booleans(),  # is_write
        st.integers(min_value=0, max_value=40),  # budget
        st.lists(  # lane addresses, drawn from a small line pool
            st.integers(min_value=0, max_value=15).map(lambda line: line * 64),
            max_size=36,
        ),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(
    num_banks=st.sampled_from([1, 2, 4]),
    num_ports=st.sampled_from([1, 2]),
    mshr_size=st.sampled_from([1, 2, 4]),
    refuse_every=st.sampled_from([0, 2, 3]),
    rounds=_cache_rounds,
)
def test_send_batch_matches_perlane_property(
    num_banks, num_ports, mshr_size, refuse_every, rounds
):
    """Property: the batched per-bank path and the per-lane loop produce
    identical accept counts, refusal order, MSHR occupancy, counters,
    response streams and lower-level traffic on random request rounds."""
    config = CacheConfig(
        size=4 * 1024, line_size=64, num_banks=num_banks, num_ports=num_ports,
        mshr_size=mshr_size, hit_latency=2,
    )
    ref_lower, bat_lower = _ScriptedLower(refuse_every), _ScriptedLower(refuse_every)
    reference = NonBlockingCache("ref", config, lower=ref_lower)
    batched = NonBlockingCache("bat", config, lower=bat_lower)
    for is_write, budget, addresses in rounds:
        entries = _entries_for(reference, addresses)
        ref_out = _perlane_reference(reference, list(entries), budget, is_write, "t")
        bat_out = batched.send_batch(list(entries), budget, is_write, "t")
        # send_batch returns (accepted, refused, budget); the reference
        # helper returns the same triple in the same order.
        assert bat_out == ref_out
        assert _cache_state(reference) == _cache_state(batched)
        assert ref_lower.fills == bat_lower.fills
        assert ref_lower.writes == bat_lower.writes
        assert ref_lower.calls == bat_lower.calls
        # Complete one outstanding fill on both sides, then advance a cycle.
        if ref_lower.fills:
            line = ref_lower.fills[-1]
            reference.fill(line)
            batched.fill(line)
        assert _drain_responses(reference, 1) == _drain_responses(batched, 1)
    # Drain everything still in flight: the response streams must agree.
    for line in ref_lower.fills:
        reference.fill(line)
        batched.fill(line)
    assert _drain_responses(reference) == _drain_responses(batched)
    assert _cache_state(reference) == _cache_state(batched)


@settings(max_examples=60, deadline=None)
@given(
    num_banks=st.sampled_from([1, 2, 4]),
    capacity=st.sampled_from([1, 2, 5]),
    rounds=_cache_rounds,
)
def test_send_batch_sticky_lower_matches_perlane_property(num_banks, capacity, rounds):
    """Property: against a sticky (shared-queue) lower level, the batched
    path's skipped-refusal accounting matches the per-lane loop's real
    refused calls — including the bulk write-tail classification."""
    config = CacheConfig(
        size=4 * 1024, line_size=64, num_banks=num_banks, num_ports=1,
        mshr_size=4, hit_latency=2,
    )
    ref_lower, bat_lower = _StickyQueueLower(capacity), _StickyQueueLower(capacity)
    reference = NonBlockingCache("ref", config, lower=ref_lower)
    batched = NonBlockingCache("bat", config, lower=bat_lower)
    for is_write, budget, addresses in rounds:
        entries = _entries_for(reference, addresses)
        ref_out = _perlane_reference(reference, list(entries), budget, is_write, "t")
        bat_out = batched.send_batch(list(entries), budget, is_write, "t")
        assert bat_out == ref_out
        assert _cache_state(reference) == _cache_state(batched)
        assert ref_lower.queue == bat_lower.queue
        assert ref_lower.rejected == bat_lower.rejected
        # The shared queue drains between cycles (its refusals are only
        # sticky within one), and fills flow back up.
        for kind, payload in ref_lower.drain():
            if kind == "fill":
                reference.fill(payload)
        for kind, payload in bat_lower.drain():
            if kind == "fill":
                batched.fill(payload)
        assert _drain_responses(reference, 1) == _drain_responses(batched, 1)
    assert _drain_responses(reference) == _drain_responses(batched)
    assert _cache_state(reference) == _cache_state(batched)


def test_can_accept_batch_is_side_effect_free():
    cache, lower = _make_cache(num_ports=1, num_banks=2)
    # Occupy bank 0's port so the probe has a refusal to predict.
    assert cache.send(CacheRequest(address=0x0, tag="a"))
    before_counters = cache.perf.as_dict()
    before_accepts = dict(cache._accepts_this_cycle)
    addresses = [0x0, 0x4, 64 * 2, 64 * 1, 64 * 3]
    probed = cache.can_accept_batch(addresses)
    # No counters charged, no accept state mutated, no lower traffic.
    assert cache.perf.as_dict() == before_counters
    assert dict(cache._accepts_this_cycle) == before_accepts
    assert lower.fills == [cache.line_address(0x0)]
    # Same-line coalescing is port-limited (1 port: 0x0/0x4 refuse), the
    # conflicting bank refuses, free banks accept.
    assert probed == [False, False, False, True, True]
    # The probe agrees with what send_raw then actually does, in order.
    for address, expected in zip(addresses, probed):
        if cache.can_accept(CacheRequest(address=address)):
            assert cache.send_raw(address, False, "x") == expected


@settings(max_examples=60, deadline=None)
@given(
    num_banks=st.sampled_from([1, 2, 4]),
    rounds=st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=20),
            st.lists(st.integers(min_value=0, max_value=63).map(lambda w: w * 4), max_size=24),
        ),
        min_size=1,
        max_size=4,
    ),
)
def test_smem_send_batch_matches_perlane_property(num_banks, rounds):
    """Property: the scratchpad's batched path matches per-lane ``send``."""
    ref = SharedMemory(core_id=0, size=8 * 1024, num_banks=num_banks, latency=1)
    bat = SharedMemory(core_id=0, size=8 * 1024, num_banks=num_banks, latency=1)
    for is_write, budget, offsets in rounds:
        entries = [(ref.base + off, True) for off in offsets]
        refused = []
        accepted = 0
        remaining = budget
        for entry in entries:
            if remaining <= 0:
                refused.append(entry)
                continue
            if ref.send(entry[0], is_write, "t"):
                accepted += 1
                remaining -= 1
            else:
                refused.append(entry)
        bat_out = bat.send_batch(list(entries), budget, is_write, "t")
        assert bat_out == (accepted, refused, remaining)
        assert ref.perf.as_dict() == bat.perf.as_dict()
        ref_done = [(r.address, r.is_write, r.cycle) for r in ref.tick()]
        bat_done = [(r.address, r.is_write, r.cycle) for r in bat.tick()]
        assert ref_done == bat_done
