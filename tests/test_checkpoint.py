"""Checkpoint/restore across the simulator layer stack.

The acceptance property for the whole subsystem: a run that pauses,
checkpoints, restores (into the same or a *fresh* device, optionally
through a pickle round-trip) and continues is **bit-identical** — same
cycles, same instruction counts, same value in every performance counter —
to a run that never paused.  These tests drive that property through the
envelope layer, both drivers, the device facade, the session restart path
and the sampled-simulation API, plus the typed error paths for
format/kind/config mismatches.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, CoreConfig, MemoryConfig, VortexConfig
from repro.engine.session import (
    KernelJob,
    Session,
    execute_job,
    execute_job_restart,
)
from repro.runtime.checkpoint import (
    SNAPSHOT_FORMAT,
    SnapshotConfigMismatch,
    SnapshotKindError,
    SnapshotVersionError,
    Snapshotable,
    make_envelope,
    open_envelope,
)
from repro.runtime.device import VortexDevice
from repro.runtime.sampling import SampledRun

CFG = VortexConfig(num_cores=1, core=CoreConfig(num_warps=2, num_threads=4))


def reports_identical(a, b) -> bool:
    return (
        a.cycles == b.cycles
        and a.instructions == b.instructions
        and a.thread_instructions == b.thread_instructions
        and a.counters == b.counters
    )


# ---------------------------------------------------------------------------
# Envelope layer


class TestEnvelope:
    def test_roundtrip(self):
        envelope = make_envelope(kind="simx", config=CFG, state={"x": 1})
        assert envelope["format"] == SNAPSHOT_FORMAT
        assert open_envelope(envelope, kind="simx", config=CFG) == {"x": 1}

    def test_version_mismatch_raises(self):
        envelope = make_envelope(kind="simx", config=CFG, state={})
        envelope["format"] = SNAPSHOT_FORMAT + 1
        with pytest.raises(SnapshotVersionError):
            open_envelope(envelope, kind="simx", config=CFG)

    def test_kind_mismatch_raises(self):
        envelope = make_envelope(kind="funcsim", config=CFG, state={})
        with pytest.raises(SnapshotKindError):
            open_envelope(envelope, kind="simx", config=CFG)

    def test_config_fingerprint_mismatch_raises(self):
        envelope = make_envelope(kind="simx", config=CFG, state={})
        other = VortexConfig(num_cores=2)
        with pytest.raises(SnapshotConfigMismatch):
            open_envelope(envelope, kind="simx", config=other)

    def test_envelope_is_picklable(self):
        envelope = make_envelope(kind="device", config=CFG, state={"n": [1, 2]})
        assert pickle.loads(pickle.dumps(envelope)) == envelope

    def test_drivers_implement_snapshotable(self):
        device = VortexDevice(CFG, driver="simx")
        assert isinstance(device.driver.processor, Snapshotable)


# ---------------------------------------------------------------------------
# Driver-level pause/restore identity


def _staged_device(driver: str, kernel: str = "vecadd", size: int = 64):
    from repro.kernels import KERNELS

    kernel_obj = KERNELS[kernel]()
    device = VortexDevice(CFG, driver=driver)
    program = kernel_obj.build_program()
    device.upload_program(program)
    context = kernel_obj.setup(device, size)
    return device, kernel_obj, program, context


class TestDriverCheckpoint:
    @pytest.mark.parametrize("driver", ["simx", "funcsim"])
    def test_restore_then_run_counter_identical(self, driver):
        straight, _, program, _ = _staged_device(driver)
        reference = straight.driver.run(program.entry)

        paused, kernel_obj, program, _ = _staged_device(driver)
        if driver == "simx":
            paused.driver.run(program.entry, stop_cycle=300)
        else:
            paused.driver.run(program.entry, stop_after_instructions=150)
        assert not paused.driver.done
        envelope = pickle.loads(pickle.dumps(paused.checkpoint()))

        fresh = VortexDevice(CFG, driver=driver)
        fresh.restore(envelope)
        report = fresh.driver.run(None, resume=True)
        assert fresh.driver.done
        assert reports_identical(reference, report)

    @pytest.mark.parametrize("driver", ["simx", "funcsim"])
    def test_snapshot_mutate_restore_rewinds(self, driver):
        device, _, program, _ = _staged_device(driver)
        envelope = device.checkpoint()
        # Mutate: run the kernel to completion, dirtying every layer.
        device.driver.run(program.entry)
        device.restore(envelope)
        assert device.checkpoint() == envelope

    def test_checkpoint_chunking_is_invisible(self):
        straight, _, program, _ = _staged_device("simx", kernel="sgemm", size=8)
        reference = straight.driver.run(program.entry)

        chunked, _, program, _ = _staged_device("simx", kernel="sgemm", size=8)
        envelopes: list[dict] = []
        report = chunked.launch_resumable(
            program.entry, checkpoint_every=250, checkpoint_sink=envelopes.append
        )
        assert envelopes, "run finished before the first checkpoint"
        assert reports_identical(reference, report)

    def test_funcsim_chunked_instruction_totals_match(self):
        straight, _, program, _ = _staged_device("funcsim")
        reference = straight.driver.run(program.entry)

        chunked, _, program, _ = _staged_device("funcsim")
        report = chunked.launch_resumable(program.entry, checkpoint_every=100)
        assert report.instructions == reference.instructions


# ---------------------------------------------------------------------------
# Hypothesis: the pause point never matters


class TestPausePointProperty:
    @given(stop=st.integers(min_value=1, max_value=1600))
    @settings(max_examples=10, deadline=None)
    def test_simx_any_pause_cycle_is_invisible(self, stop):
        straight, _, program, _ = _staged_device("simx")
        reference = straight.driver.run(program.entry)

        paused, _, program, _ = _staged_device("simx")
        paused.driver.run(program.entry, stop_cycle=stop)
        envelope = pickle.loads(pickle.dumps(paused.checkpoint()))
        fresh = VortexDevice(CFG, driver="simx")
        fresh.restore(envelope)
        report = fresh.driver.run(None, resume=True)
        assert reports_identical(reference, report)

    @given(stop=st.integers(min_value=1, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_funcsim_any_pause_round_is_invisible(self, stop):
        straight, _, program, _ = _staged_device("funcsim")
        reference = straight.driver.run(program.entry)

        paused, _, program, _ = _staged_device("funcsim")
        paused.driver.run(program.entry, stop_after_instructions=stop)
        envelope = pickle.loads(pickle.dumps(paused.checkpoint()))
        fresh = VortexDevice(CFG, driver="funcsim")
        fresh.restore(envelope)
        report = fresh.driver.run(None, resume=True)
        assert reports_identical(reference, report)


# ---------------------------------------------------------------------------
# Session integration


class TestSessionCheckpoint:
    def test_restart_midpoint_job_matches_straight_run(self):
        job = KernelJob(kernel="sgemm", config=CFG, driver="simx", size=8)
        straight = execute_job(job)
        restarted = execute_job_restart(job)
        assert straight.ok and restarted.ok
        assert reports_identical(straight.report, restarted.report)

    def test_session_run_resume_from_checkpoint(self):
        session = Session(executor="serial")
        job = KernelJob(kernel="sgemm", config=CFG, driver="simx", size=8)
        envelopes: list[dict] = []
        chunked = session.run(job, checkpoint_every=300, checkpoint_sink=envelopes.append)
        straight = session.run(job)
        assert chunked.ok and straight.ok
        assert reports_identical(chunked.report, straight.report)
        resumed = session.run(
            job,
            checkpoint_every=300,
            resume_from=pickle.loads(pickle.dumps(envelopes[0])),
        )
        assert resumed.ok
        assert reports_identical(resumed.report, straight.report)

    def test_differential_checkpoint_legs_identical(self):
        session = Session(executor="serial")
        jobs = [KernelJob(kernel="vecadd", config=CFG, driver="simx", size=64)]
        report = session.run_differential(jobs, checkpoint_legs=True)
        assert report.identical_counters, report.results[0].mismatches
        assert report.results[0].restored is not None
        assert report.results[0].restored.ok

    def test_restart_midpoint_changes_cache_key(self):
        job = KernelJob(kernel="vecadd", config=CFG, driver="simx", size=64)
        restart = KernelJob(
            kernel="vecadd", config=CFG, driver="simx", size=64, restart_midpoint=True
        )
        assert job.cache_key() != restart.cache_key()


# ---------------------------------------------------------------------------
# Sampled simulation


class TestSampledRun:
    def test_sampled_run_is_deterministic(self):
        kwargs = dict(sample_period=200, interval_cycles=500)
        first = SampledRun("sgemm", CFG, 8, **kwargs).run()
        second = SampledRun("sgemm", CFG, 8, **kwargs).run()
        assert first.passed and second.passed
        assert len(first.intervals) == len(second.intervals) >= 2
        for a, b in zip(first.intervals, second.intervals):
            assert (a.cycles, a.instructions, a.thread_instructions) == (
                b.cycles,
                b.instructions,
                b.thread_instructions,
            )
            assert a.counters == b.counters

    def test_estimated_cycles_positive_and_payload_shape(self):
        report = SampledRun("vecadd", CFG, 64, sample_period=150, interval_cycles=400).run()
        assert report.passed
        assert report.total_instructions > 0
        assert report.estimated_cycles > 0
        payload = report.to_payload()
        assert payload["kernel"] == "vecadd"
        assert len(payload["intervals"]) == len(report.intervals)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SampledRun("vecadd", CFG, sample_period=0)
        with pytest.raises(ValueError):
            SampledRun("vecadd", CFG, interval_cycles=-1)


# ---------------------------------------------------------------------------
# Warm-pool pristine restore


class TestWarmPoolRestore:
    def test_repeat_jobs_restore_and_stay_identical(self):
        from repro.service.worker import WarmPool

        pool = WarmPool()
        job = KernelJob(kernel="vecadd", config=CFG, driver="simx", size=64)
        first = pool.run_job(job)
        second = pool.run_job(job)
        reference = execute_job(job)
        assert first.ok and second.ok and reference.ok
        assert pool.restore_hits == 1
        assert reports_identical(first.report, reference.report)
        assert reports_identical(second.report, reference.report)
