"""Tests for the elastic-pipeline primitives (ready/valid channels)."""

import pytest

from repro.common.elastic import ElasticChannel, ElasticStage


def test_push_pop_preserves_order_and_tags():
    channel = ElasticChannel("fetch", capacity=4)
    for index in range(3):
        assert channel.push(payload=index, tag=("pc", index))
    assert channel.valid
    assert [channel.pop().payload for _ in range(3)] == [0, 1, 2]
    assert not channel.valid


def test_backpressure_when_full():
    channel = ElasticChannel("issue", capacity=1)
    assert channel.push("first")
    assert not channel.ready
    assert not channel.push("second")
    assert channel.stalls == 1
    channel.pop()
    assert channel.push("second")


def test_unbounded_channel_never_backpressures():
    channel = ElasticChannel("deep", capacity=None)
    for index in range(1000):
        assert channel.push(index)
    assert len(channel) == 1000


def test_peek_does_not_consume():
    channel = ElasticChannel("x")
    channel.push("payload", tag=(0x80000000, 2))
    assert channel.peek().tag == (0x80000000, 2)
    assert channel.valid
    assert channel.pop().payload == "payload"


def test_pop_empty_raises():
    channel = ElasticChannel("empty")
    with pytest.raises(IndexError):
        channel.pop()
    with pytest.raises(IndexError):
        channel.peek()


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        ElasticChannel("bad", capacity=0)


def test_stage_utilization():
    stage = ElasticStage("execute")
    for cycle in range(10):
        stage.tick(did_work=cycle % 2 == 0)
    assert stage.total_cycles == 10
    assert stage.busy_cycles == 5
    assert stage.utilization == pytest.approx(0.5)


def test_stage_utilization_zero_cycles():
    assert ElasticStage("idle").utilization == 0.0
