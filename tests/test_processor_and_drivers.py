"""System-level tests: multi-core processors, the two simulation drivers,
the command processor (AFU) and the device facade."""

import numpy as np
import pytest

from repro.common.config import MemoryConfig, VortexConfig
from repro.core.barrier import GLOBAL_BARRIER_FLAG
from repro.core.processor import Processor, TimingProcessor
from repro.isa.builder import ProgramBuilder
from repro.isa.csr import CSR
from repro.isa.registers import Reg
from repro.kernels import SaxpyKernel, VecAddKernel
from repro.runtime.buffer import AllocationError, BufferAllocator
from repro.runtime.device import VortexDevice
from repro.runtime.driver import DriverError, Mmio, Status
from repro.runtime.opencl import Context, Program

BASE = 0x8000_0000


def _per_core_store_program():
    """Each core's warp 0 stores (100 + core_id) to 0x1000 + 4*core_id."""
    asm = ProgramBuilder(base=BASE)
    asm.csr_read(Reg.t0, CSR.CORE_ID)
    asm.slli(Reg.t1, Reg.t0, 2)
    asm.li(Reg.a0, 0x1000)
    asm.add(Reg.a0, Reg.a0, Reg.t1)
    asm.addi(Reg.t2, Reg.t0, 100)
    asm.sw(Reg.t2, 0, Reg.a0)
    asm.li(Reg.t6, 0)
    asm.tmc(Reg.t6)
    return asm.assemble()


def _global_barrier_program(num_cores):
    """Warp 0 of every core arrives at a global barrier, then core 0 sums flags."""
    asm = ProgramBuilder(base=BASE)
    asm.csr_read(Reg.t0, CSR.CORE_ID)
    asm.slli(Reg.t1, Reg.t0, 2)
    asm.li(Reg.a0, 0x2000)
    asm.add(Reg.a1, Reg.a0, Reg.t1)
    asm.li(Reg.t2, 1)
    asm.sw(Reg.t2, 0, Reg.a1)
    # Global barrier: MSB set, one wavefront per core expected.
    asm.li(Reg.t3, GLOBAL_BARRIER_FLAG)
    asm.li(Reg.t4, num_cores)
    asm.bar(Reg.t3, Reg.t4)
    asm.bnez(Reg.t0, "done")
    asm.li(Reg.t5, 0)
    for core in range(num_cores):
        asm.lw(Reg.t6, core * 4, Reg.a0)
        asm.add(Reg.t5, Reg.t5, Reg.t6)
    asm.sw(Reg.t5, 0x100, Reg.a0)
    asm.label("done")
    asm.li(Reg.t6, 0)
    asm.tmc(Reg.t6)
    return asm.assemble()


# -- functional multi-core processor ---------------------------------------------------------


def test_functional_processor_runs_all_cores():
    config = VortexConfig(num_cores=4)
    processor = Processor(config)
    program = _per_core_store_program()
    processor.memory.load_words(program.base, program.words)
    processor.run(program.entry)
    assert processor.memory.read_words(0x1000, 4) == [100, 101, 102, 103]
    assert processor.done


def test_global_barrier_across_cores_functional():
    config = VortexConfig(num_cores=4)
    processor = Processor(config)
    program = _global_barrier_program(4)
    processor.memory.load_words(program.base, program.words)
    processor.run(program.entry)
    assert processor.memory.read_word(0x2100) == 4


# -- timing multi-core processor -------------------------------------------------------------


def test_timing_processor_matches_functional_results():
    config = VortexConfig(num_cores=2, memory=MemoryConfig(latency=30, bandwidth=1))
    program = _per_core_store_program()

    timing = TimingProcessor(config)
    timing.memory.load_words(program.base, program.words)
    cycles = timing.run(program.entry)
    assert cycles > 0
    assert timing.memory.read_words(0x1000, 2) == [100, 101]
    assert timing.total_instructions > 0
    assert 0 < timing.ipc <= config.core.num_threads * config.num_cores


def test_global_barrier_across_cores_timing():
    config = VortexConfig(num_cores=2, memory=MemoryConfig(latency=20, bandwidth=1))
    processor = TimingProcessor(config)
    program = _global_barrier_program(2)
    processor.memory.load_words(program.base, program.words)
    processor.run(program.entry)
    assert processor.memory.read_word(0x2100) == 2


def test_timing_counters_include_caches():
    config = VortexConfig(num_cores=1)
    processor = TimingProcessor(config)
    program = _per_core_store_program()
    processor.memory.load_words(program.base, program.words)
    processor.run(program.entry)
    counters = processor.counters()
    assert "dcache0" in counters and "icache0" in counters and "dram" in counters
    assert counters["icache0"]["attempts"] > 0


# -- drivers produce consistent results --------------------------------------------------------


@pytest.mark.parametrize("kernel_cls", [VecAddKernel, SaxpyKernel])
def test_funcsim_and_simx_agree_on_kernel_output(kernel_cls):
    results = {}
    for driver in ("funcsim", "simx"):
        device = VortexDevice(VortexConfig(), driver=driver)
        run = kernel_cls().run(device, size=64)
        assert run.passed
        results[driver] = run.report
    assert results["funcsim"].instructions == results["simx"].instructions
    assert results["simx"].cycles > 0
    assert results["funcsim"].cycles == 0


# -- AFU / command processor --------------------------------------------------------------------


def test_afu_dma_and_mmio_protocol():
    device = VortexDevice(VortexConfig(), driver="funcsim")
    afu = device.afu
    assert afu.status == Status.IDLE
    afu.dma_host_to_device(0x100, b"\x11\x22\x33\x44")
    assert afu.dma_device_to_host(0x100, 4) == b"\x11\x22\x33\x44"
    assert afu.perf.get("h2d_bytes") == 4
    assert afu.perf.get("d2h_bytes") == 4
    assert afu.estimated_transfer_seconds() > 0
    with pytest.raises(DriverError):
        afu.mmio_read(0x999)


def test_afu_launch_updates_status_and_counters():
    device = VortexDevice(VortexConfig(), driver="simx")
    run = VecAddKernel().run(device, size=32)
    assert run.passed
    afu = device.afu
    assert afu.status == Status.DONE
    assert afu.mmio_read(int(Mmio.CYCLE_COUNT)) == run.report.cycles
    assert afu.mmio_read(int(Mmio.INSTR_COUNT)) == run.report.instructions
    assert afu.perf.get("launches") == 1


# -- buffers and device facade --------------------------------------------------------------------


def test_buffer_allocator_alignment_and_exhaustion():
    allocator = BufferAllocator(base=0x1000, size=0x100)
    first = allocator.allocate(10, alignment=64)
    second = allocator.allocate(10, alignment=64)
    assert first % 64 == 0 and second % 64 == 0 and second > first
    with pytest.raises(AllocationError):
        allocator.allocate(0x1000)
    allocator.reset()
    assert allocator.allocate(16) == 0x1000


def test_device_buffer_numpy_roundtrip():
    device = VortexDevice(VortexConfig(), driver="funcsim")
    data = np.arange(100, dtype=np.uint32)
    buffer = device.alloc_array(data)
    assert np.array_equal(buffer.read(np.uint32, 100), data)
    floats = np.linspace(0, 1, 50, dtype=np.float32)
    fbuf = device.alloc_array(floats)
    assert np.allclose(fbuf.read(np.float32, 50), floats)


def test_device_rejects_unknown_driver():
    with pytest.raises(ValueError):
        VortexDevice(VortexConfig(), driver="verilator")


@pytest.mark.parametrize("driver_cls", ["simx", "funcsim"])
def test_instance_constructed_driver_shares_device_memory(driver_cls):
    """Regression: a driver object constructed with its own ``MainMemory``
    used to simulate on different memory than the AFU DMAs into — uploads
    and readbacks silently missed the simulation.  The device now adopts
    the driver's memory."""
    from repro.runtime.funcsim import FuncSimDriver
    from repro.runtime.simx import SimxDriver

    cls = SimxDriver if driver_cls == "simx" else FuncSimDriver
    driver = cls(VortexConfig())  # builds its own MainMemory
    device = VortexDevice(VortexConfig(), driver=driver)
    assert device.memory is driver.memory
    assert device.afu.memory is driver.memory

    # Full upload -> launch -> readback through the instance-constructed driver.
    run = VecAddKernel().run(device, size=64)
    assert run.passed
    assert run.report.instructions > 0


def test_launch_without_program_requires_entry():
    device = VortexDevice(VortexConfig(), driver="funcsim")
    with pytest.raises(ValueError):
        device.launch()


# -- OpenCL-style host API --------------------------------------------------------------------------


def test_opencl_style_vecadd():
    ctx = Context(VortexConfig(), driver="funcsim")
    program = Program(ctx, ["vecadd"])
    assert program.kernel_names == ["vecadd"]
    size = 64
    a = np.arange(size, dtype=np.uint32)
    b = np.full(size, 5, dtype=np.uint32)
    buf_a = ctx.buffer_from(a)
    buf_b = ctx.buffer_from(b)
    buf_c = ctx.buffer(size * 4)
    kernel = program.kernel("vecadd").set_args(buf_a, buf_b, buf_c)
    report = kernel.enqueue(global_size=size)
    assert report.instructions > 0
    assert np.array_equal(buf_c.read(np.uint32, size), a + b)


def test_opencl_unknown_kernel_rejected():
    ctx = Context(VortexConfig(), driver="funcsim")
    with pytest.raises(KeyError):
        Program(ctx, ["not_a_kernel"])
