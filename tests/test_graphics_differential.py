"""Differential test: the vectorized graphics engine vs the scalar reference.

Every scenario renders twice — once on ``GraphicsContext(engine="scalar")``,
once on ``engine="vector"`` — and the results must be pixel-identical:
the color buffer, the depth buffer (compared bitwise), the stencil buffer,
and the fragment statistics (fragments generated/in/written and each kill
counter), mirroring the engine differential suite for the execution
engines.
"""

import numpy as np
import pytest

from repro.graphics.fragment import BlendMode, CompareFunc, FogState
from repro.graphics.geometry import Matrix4, Vertex
from repro.graphics.pipeline import GraphicsContext, PrimitiveType
from repro.texture.formats import TexFilter, TexWrap


def _checker_texture(size=16, seed=5):
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(size, size, 4), dtype=np.uint8)
    image[..., 3] = 255
    return image


def _triangle_fan(count, alpha=1.0, z_spread=True):
    rng = np.random.default_rng(29)
    vertices = []
    for index in range(count):
        z = (index / max(count - 1, 1)) - 0.5 if z_spread else 0.0
        for _ in range(3):
            x, y = rng.uniform(-1.1, 1.1, size=2)
            color = tuple(rng.uniform(0, 1, size=3)) + (alpha,)
            uv = tuple(rng.uniform(-0.5, 1.5, size=2))
            vertices.append(Vertex(position=(x, y, z, 1.0), color=color, uv=uv))
    return vertices


def _seam_quad():
    """Two triangles sharing a diagonal that crosses pixel centres."""
    a = Vertex(position=(-0.75, -0.75, 0, 1), color=(0.3, 0.3, 0.3, 1.0))
    b = Vertex(position=(0.75, -0.75, 0, 1), color=(0.3, 0.3, 0.3, 1.0))
    c = Vertex(position=(0.75, 0.75, 0, 1), color=(0.3, 0.3, 0.3, 1.0))
    d = Vertex(position=(-0.75, 0.75, 0, 1), color=(0.3, 0.3, 0.3, 1.0))
    return [a, b, c, a, c, d]


def _scenario_untextured(ctx):
    ctx.draw(_triangle_fan(6))


def _scenario_textured_bilinear(ctx):
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.BILINEAR,
                     wrap=TexWrap.REPEAT)
    ctx.draw(_triangle_fan(6))


def _scenario_textured_point(ctx):
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.POINT,
                     wrap=TexWrap.MIRROR)
    ctx.draw(_triangle_fan(6))


def _scenario_alpha_blend(ctx):
    ctx.fragment_ops.blend = BlendMode.ALPHA
    ctx.fragment_ops.depth_test = False
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.BILINEAR)
    ctx.draw(_triangle_fan(8, alpha=0.6, z_spread=False))


def _scenario_additive_seam(ctx):
    ctx.fragment_ops.blend = BlendMode.ADDITIVE
    ctx.fragment_ops.depth_test = False
    ctx.draw(_seam_quad())


def _scenario_alpha_test(ctx):
    ctx.fragment_ops.alpha_test = True
    ctx.fragment_ops.alpha_func = CompareFunc.GREATER
    ctx.fragment_ops.alpha_ref = 0.5
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.BILINEAR)
    ctx.draw(_triangle_fan(4, alpha=0.4, z_spread=False) + _triangle_fan(4, alpha=0.9))


def _scenario_stencil(ctx):
    ctx.framebuffer.stencil[8:24, 8:24] = 1
    ctx.fragment_ops.stencil_test = True
    ctx.fragment_ops.stencil_func = CompareFunc.EQUAL
    ctx.fragment_ops.stencil_ref = 1
    ctx.draw(_triangle_fan(5))


def _scenario_fog(ctx):
    ctx.fragment_ops.fog = FogState(enabled=True, color=(0.2, 0.3, 0.4),
                                    start=0.2, end=0.8)
    ctx.draw(_triangle_fan(5))


def _scenario_depth_funcs(ctx):
    ctx.fragment_ops.depth_func = CompareFunc.LEQUAL
    ctx.draw(_triangle_fan(6))
    ctx.fragment_ops.depth_func = CompareFunc.GREATER
    ctx.draw(_triangle_fan(6))


def _scenario_lines(ctx):
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.BILINEAR)
    ctx.fragment_ops.blend = BlendMode.ALPHA
    rng = np.random.default_rng(17)
    vertices = [
        Vertex(position=(x, y, 0, 1), color=(1, 1, 0.5, 0.8), uv=(x, y))
        for x, y in rng.uniform(-1, 1, size=(12, 2))
    ]
    ctx.draw(vertices, primitive=PrimitiveType.LINES)


def _scenario_lines_rounding_ties(ctx):
    """Half-integer screen coordinates put every DDA step on a rounding tie."""
    ctx.fragment_ops.blend = BlendMode.ADDITIVE
    ctx.fragment_ops.depth_test = False
    # An orthographic [-1, 1] viewport on 32 pixels maps x = -1 to 0 and
    # x = 1 to 31; picking NDC values at odd/31 * 2 - 1 lands on .5 pixels.
    def ndc(pixel):
        return pixel / 31 * 2 - 1

    vertices = [
        Vertex(position=(ndc(2.5), ndc(3.0), 0, 1), color=(0.25, 0.25, 0.25, 1.0)),
        Vertex(position=(ndc(10.5), ndc(3.0), 0, 1), color=(0.25, 0.25, 0.25, 1.0)),
        Vertex(position=(ndc(4.5), ndc(6.5), 0, 1), color=(0.25, 0.25, 0.25, 1.0)),
        Vertex(position=(ndc(4.5), ndc(20.5), 0, 1), color=(0.25, 0.25, 0.25, 1.0)),
    ]
    ctx.draw(vertices, primitive=PrimitiveType.LINES)


def _scenario_points(ctx):
    ctx.fragment_ops.blend = BlendMode.ADDITIVE
    ctx.fragment_ops.depth_test = False
    rng = np.random.default_rng(23)
    vertices = [
        Vertex(position=(x, y, 0, 1), color=(0.3, 0.2, 0.1, 1.0))
        for x, y in rng.uniform(-1, 1, size=(40, 2))
    ]
    # Repeated points must blend twice on both engines.
    ctx.draw(vertices + vertices[:10], primitive=PrimitiveType.POINTS)


def _scenario_perspective(ctx):
    ctx.set_mvp(
        Matrix4.perspective(np.radians(60), 1.0, 0.1, 50.0)
        @ Matrix4.translation(0, 0, -2.5)
        @ Matrix4.rotation_y(0.6)
    )
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.BILINEAR)
    ctx.draw(_triangle_fan(6))


def _textured_quad(uv_scale, z=0.0):
    """A screen-filling two-triangle quad with uv in [0, uv_scale]."""
    corners = (
        ((-0.95, -0.95), (0.0, 0.0)),
        ((0.95, -0.95), (uv_scale, 0.0)),
        ((0.95, 0.95), (uv_scale, uv_scale)),
        ((-0.95, 0.95), (0.0, uv_scale)),
    )

    def vertex(index):
        (x, y), uv = corners[index]
        return Vertex(position=(x, y, z, 1.0), color=(1.0, 1.0, 1.0, 1.0), uv=uv)

    return [vertex(0), vertex(1), vertex(2), vertex(0), vertex(2), vertex(3)]


def _scenario_trilinear_minified(ctx):
    """uv spans many texels per pixel: derivative LOD lands mid-chain and
    the trilinear filter blends two generated mip levels."""
    ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.TRILINEAR,
                     wrap=TexWrap.REPEAT, mipmaps=True)
    ctx.draw(_textured_quad(uv_scale=8.0))


def _scenario_trilinear_magnified(ctx):
    """uv spans a fraction of a texel per pixel: LOD clamps to the base level."""
    ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.TRILINEAR,
                     wrap=TexWrap.CLAMP, mipmaps=True)
    ctx.draw(_textured_quad(uv_scale=0.2))


def _scenario_trilinear_perspective(ctx):
    """Perspective projection: the LOD varies across each triangle."""
    ctx.set_mvp(
        Matrix4.perspective(np.radians(70), 1.0, 0.1, 50.0)
        @ Matrix4.translation(0, 0, -1.6)
        @ Matrix4.rotation_y(1.0)
    )
    ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.TRILINEAR,
                     wrap=TexWrap.REPEAT, mipmaps=True)
    ctx.draw(_textured_quad(uv_scale=6.0))


def _scenario_bilinear_mipmapped(ctx):
    """Bilinear + mip chain: derivative LOD truncated to one level."""
    ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.BILINEAR,
                     wrap=TexWrap.MIRROR, mipmaps=True)
    ctx.draw(_textured_quad(uv_scale=5.0) + _textured_quad(uv_scale=0.4, z=-0.5))


def _scenario_point_mipmapped(ctx):
    """Point filter + mip chain: nearest texel of the derivative-selected level."""
    ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.POINT,
                     wrap=TexWrap.REPEAT, mipmaps=True)
    ctx.draw(_textured_quad(uv_scale=7.0))


def _scenario_trilinear_no_mips(ctx):
    """Trilinear without a generated chain degrades to the base level."""
    ctx.bind_texture(_checker_texture(), filter_mode=TexFilter.TRILINEAR,
                     wrap=TexWrap.REPEAT)
    ctx.draw(_triangle_fan(5))


def _scenario_perspective_depth(ctx):
    ctx.set_mvp(
        Matrix4.perspective(np.radians(60), 1.0, 0.1, 50.0)
        @ Matrix4.translation(0, 0, -2.2)
        @ Matrix4.rotation_y(0.5)
    )
    ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.TRILINEAR,
                     wrap=TexWrap.REPEAT, mipmaps=True)
    ctx.draw(_triangle_fan(6))


SCENARIOS = {
    "untextured": _scenario_untextured,
    "textured_bilinear": _scenario_textured_bilinear,
    "textured_point": _scenario_textured_point,
    "alpha_blend": _scenario_alpha_blend,
    "additive_seam": _scenario_additive_seam,
    "alpha_test": _scenario_alpha_test,
    "stencil": _scenario_stencil,
    "fog": _scenario_fog,
    "depth_funcs": _scenario_depth_funcs,
    "lines": _scenario_lines,
    "lines_rounding_ties": _scenario_lines_rounding_ties,
    "points": _scenario_points,
    "perspective": _scenario_perspective,
    "trilinear_minified": _scenario_trilinear_minified,
    "trilinear_magnified": _scenario_trilinear_magnified,
    "trilinear_perspective": _scenario_trilinear_perspective,
    "bilinear_mipmapped": _scenario_bilinear_mipmapped,
    "point_mipmapped": _scenario_point_mipmapped,
    "trilinear_no_mips": _scenario_trilinear_no_mips,
    "perspective_depth": _scenario_perspective_depth,
}

#: Extra GraphicsContext keyword arguments per scenario.
CONTEXT_KWARGS = {
    "perspective_depth": {"perspective_depth": True},
}


def _render(engine, scenario):
    kwargs = CONTEXT_KWARGS.get(scenario, {})
    ctx = GraphicsContext(32, 32, tile_size=8, engine=engine, **kwargs)
    ctx.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    ctx.clear(color=(12, 8, 24, 255))
    SCENARIOS[scenario](ctx)
    return ctx


def _statistics(ctx):
    ops = ctx.fragment_ops
    return {
        "generated": ctx.rasterizer.fragments_generated,
        "culled": ctx.rasterizer.triangles_culled,
        "in": ops.fragments_in,
        "written": ops.fragments_written,
        "depth_kills": ops.depth_kills,
        "alpha_kills": ops.alpha_kills,
        "stencil_kills": ops.stencil_kills,
    }


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_vector_graphics_matches_scalar_reference(scenario):
    scalar = _render("scalar", scenario)
    vector = _render("vector", scenario)

    assert np.array_equal(scalar.framebuffer.color, vector.framebuffer.color), (
        f"{scenario}: color buffers differ"
    )
    # Depth is float32: compare the raw bits, not approximate values.
    assert np.array_equal(
        scalar.framebuffer.depth.view(np.uint32),
        vector.framebuffer.depth.view(np.uint32),
    ), f"{scenario}: depth buffers differ"
    assert np.array_equal(scalar.framebuffer.stencil, vector.framebuffer.stencil), (
        f"{scenario}: stencil buffers differ"
    )
    assert _statistics(scalar) == _statistics(vector), f"{scenario}: statistics differ"
    # The scene must actually touch the framebuffer to be a meaningful diff.
    assert scalar.fragment_ops.fragments_in > 0


def test_vector_context_rejects_unknown_engine():
    with pytest.raises(ValueError):
        GraphicsContext(8, 8, engine="warp-speed")


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_perspective_depth_changes_the_depth_buffer(engine):
    """The option must actually alter interpolation under a perspective
    projection (uv/color already use 1/w weighting; only depth switches)."""

    def render(perspective_depth):
        ctx = GraphicsContext(32, 32, tile_size=8, engine=engine,
                              perspective_depth=perspective_depth)
        ctx.clear()
        SCENARIOS["perspective_depth"](ctx)
        return ctx.framebuffer.depth.copy()

    linear = render(False)
    perspective = render(True)
    assert not np.array_equal(linear, perspective)


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_minification_selects_coarser_mips(engine):
    """A minified quad must actually read the generated mip chain: the
    render differs from the same scene clamped to the base level."""

    def render(mipmaps):
        ctx = GraphicsContext(32, 32, tile_size=8, engine=engine)
        ctx.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
        ctx.clear()
        ctx.bind_texture(_checker_texture(32), filter_mode=TexFilter.TRILINEAR,
                         wrap=TexWrap.REPEAT, mipmaps=mipmaps)
        ctx.draw(_textured_quad(uv_scale=8.0))
        return ctx.framebuffer.color.copy()

    assert not np.array_equal(render(True), render(False))
