"""The benchmark/identity gate CLI (`benchmarks/check_regression.py`).

Exercises the ``--require-identical`` mode the CI ``session_differential``
step uses: green on an all-identical ``Session.run_differential`` payload,
red on mismatches, errored jobs, and — crucially — on payloads with
nothing to check (an empty sweep must not read as a guarantee).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _payload_file(tmp_path, payload) -> Path:
    path = tmp_path / "payload.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_identity_gate_green_on_identical_payload(tmp_path):
    path = _payload_file(
        tmp_path,
        {
            "identical_counters": True,
            "results": [
                {"scenario": "a", "identical_counters": True, "mismatches": [], "errors": []}
            ],
        },
    )
    assert check_regression.main(["--require-identical", str(path)]) == 0


def test_identity_gate_red_on_mismatch(tmp_path):
    path = _payload_file(
        tmp_path,
        {
            "identical_counters": False,
            "results": [
                {
                    "scenario": "a",
                    "identical_counters": False,
                    "mismatches": ["core0.cycles: 1 != 2"],
                    "errors": [],
                }
            ],
        },
    )
    assert check_regression.main(["--require-identical", str(path)]) == 1


def test_identity_gate_red_on_empty_or_flagless_payloads(tmp_path):
    """No rows (or rows without identity flags) must fail, not pass."""
    assert check_regression.main(
        ["--require-identical", str(_payload_file(tmp_path, {}))]
    ) == 1
    path = _payload_file(tmp_path, {"results": [{"scenario": "a"}]})
    assert check_regression.main(["--require-identical", str(path)]) == 1


def test_identity_gate_red_on_errored_jobs(tmp_path):
    path = _payload_file(
        tmp_path,
        {
            "identical_counters": True,
            "results": [
                {
                    "scenario": "a",
                    "identical_counters": True,
                    "mismatches": [],
                    "errors": ["KeyError: 'boom'"],
                }
            ],
        },
    )
    assert check_regression.main(["--require-identical", str(path)]) == 1


def test_cli_argument_validation(capsys):
    with pytest.raises(SystemExit):
        check_regression.main([])  # nothing to check
    with pytest.raises(SystemExit):
        check_regression.main(["only_baseline.json"])  # current missing
