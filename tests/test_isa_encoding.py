"""Tests for instruction-format packing/unpacking."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import Fields, InstrFormat, Opcode, decode_imm, encode, imm_fits, pack, unpack

regs = st.integers(min_value=0, max_value=31)


def test_r_type_roundtrip():
    word = encode(InstrFormat.R, Opcode.OP, rd=3, rs1=4, rs2=5, funct3=0, funct7=0x20)
    fields = unpack(word, InstrFormat.R)
    assert (fields.rd, fields.rs1, fields.rs2, fields.funct3, fields.funct7) == (3, 4, 5, 0, 0x20)
    assert fields.opcode == Opcode.OP


def test_r4_type_carries_rs3():
    word = encode(InstrFormat.R4, Opcode.FMADD, rd=1, rs1=2, rs2=3, rs3=4, funct3=7)
    fields = unpack(word, InstrFormat.R4)
    assert fields.rs3 == 4
    assert fields.rd == 1


@given(regs, regs, st.integers(min_value=-2048, max_value=2047))
def test_i_type_immediate_roundtrip(rd, rs1, imm):
    word = encode(InstrFormat.I, Opcode.OP_IMM, rd=rd, rs1=rs1, funct3=0, imm=imm)
    assert decode_imm(word, InstrFormat.I) == imm


@given(regs, regs, st.integers(min_value=-2048, max_value=2047))
def test_s_type_immediate_roundtrip(rs1, rs2, imm):
    word = encode(InstrFormat.S, Opcode.STORE, rs1=rs1, rs2=rs2, funct3=2, imm=imm)
    fields = unpack(word, InstrFormat.S)
    assert fields.imm == imm
    assert (fields.rs1, fields.rs2) == (rs1, rs2)


@given(st.integers(min_value=-4096, max_value=4094).filter(lambda v: v % 2 == 0))
def test_b_type_immediate_roundtrip(imm):
    word = encode(InstrFormat.B, Opcode.BRANCH, rs1=1, rs2=2, funct3=0, imm=imm)
    assert decode_imm(word, InstrFormat.B) == imm


@given(st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 2).filter(lambda v: v % 2 == 0))
def test_j_type_immediate_roundtrip(imm):
    word = encode(InstrFormat.J, Opcode.JAL, rd=1, imm=imm)
    assert decode_imm(word, InstrFormat.J) == imm


def test_u_type_keeps_upper_bits():
    word = encode(InstrFormat.U, Opcode.LUI, rd=5, imm=0x12345000)
    assert decode_imm(word, InstrFormat.U) == 0x12345000


def test_imm_fits_ranges():
    assert imm_fits(2047, InstrFormat.I)
    assert not imm_fits(2048, InstrFormat.I)
    assert imm_fits(-2048, InstrFormat.I)
    assert not imm_fits(-2049, InstrFormat.I)
    assert imm_fits(0xFFFFF000, InstrFormat.U)
    assert imm_fits(4094, InstrFormat.B)
    assert not imm_fits(4096, InstrFormat.B)


def test_opcode_stays_in_low_bits():
    word = pack(Fields(opcode=Opcode.VX_EXT, rd=31, rs1=31, rs2=31, funct3=7, funct7=0x7F), InstrFormat.R)
    assert word & 0x7F == Opcode.VX_EXT


def test_unsupported_format_raises():
    with pytest.raises(ValueError):
        pack(Fields(opcode=0x33), "not-a-format")
