"""Differential tests: the vectorized SIMX timing engine vs the scalar reference.

``TimingCore(engine="vector")`` executes issued warps through the vectorized
emulator's compiled whole-warp lane plans; ``engine="scalar"`` steps the
per-thread reference emulator.  The timing model (scheduler, scoreboard,
latencies, caches, MSHRs) is shared, so the two engines must report
**bit-identical** cycles, instruction counts and every performance counter
on every configuration the paper's figures sweep.

The Figure 14 (core design points), Figure 19 (virtual multi-port caches)
and multicore/divergence scenarios run through the first-class sweep API —
``Session.run_differential`` — which is exactly the "run on both engines and
diff every counter" check these tests used to hand-roll per scenario.  The
texture scenarios build ad-hoc kernels, so they diff reports directly.
"""

from __future__ import annotations

import pytest

from repro.common.config import CORE_DESIGN_POINTS, CacheConfig, MemoryConfig, VortexConfig
from repro.engine.session import KernelJob, Session, diff_execution_reports
from repro.kernels.texture import hardware_texture_kernel, software_texture_kernel
from repro.runtime.device import VortexDevice


def _fig_config(
    num_cores: int = 1,
    num_warps: int = 4,
    num_threads: int = 4,
    dcache_ports: int = 1,
) -> VortexConfig:
    """The benchmark harness's configuration shape (see benchmarks/harness.py)."""
    return VortexConfig(
        num_cores=num_cores,
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=dcache_ports),
        memory=MemoryConfig(latency=100, bandwidth=1),
    ).with_warps_threads(num_warps, num_threads)


def _differential(kernel: str, size: int, config: VortexConfig):
    """One job through the sweep API; returns the per-job differential result."""
    report = Session(executor="serial").run_differential(
        [KernelJob(kernel=kernel, size=size, config=config)]
    )
    (result,) = report.results
    assert result.ok, (result.scalar.error, result.vector.error)
    assert result.identical_counters, result.mismatches
    assert report.identical_counters
    return result


# -- Figure 14: core design-space points ------------------------------------------------


@pytest.mark.parametrize("label", list(CORE_DESIGN_POINTS))
def test_fig14_design_points_bit_identical(label):
    warps, threads = CORE_DESIGN_POINTS[label]
    config = _fig_config(num_warps=warps, num_threads=threads)
    result = _differential("sgemm", 8 * 8, config)
    assert result.scalar.report.engine == "timing-scalar"
    assert result.vector.report.engine == "timing-vector"


@pytest.mark.parametrize("kernel,size", [("vecadd", 128), ("saxpy", 128), ("nearn", 128)])
def test_fig14_kernels_bit_identical(kernel, size):
    _differential(kernel, size, _fig_config())


# -- Figure 19: virtual multi-port caches ------------------------------------------------


@pytest.mark.parametrize("ports", [1, 2, 4])
def test_fig19_port_counts_bit_identical(ports):
    config = _fig_config(dcache_ports=ports)
    result = _differential("sfilter", 8 * 8, config)
    # The Figure 19 metric itself (bank utilization inputs) must agree.
    scalar, vector = result.scalar.report, result.vector.report
    assert scalar.counters["dcache0"].get("bank_conflicts", 0) == vector.counters[
        "dcache0"
    ].get("bank_conflicts", 0)


# -- Figure 20: texture acceleration ------------------------------------------------------


@pytest.mark.parametrize("mode", ["point", "bilinear", "trilinear"])
@pytest.mark.parametrize("use_hw", [True, False])
def test_fig20_texture_modes_bit_identical(mode, use_hw):
    config = _fig_config()

    def run(driver):
        kernel = hardware_texture_kernel(mode) if use_hw else software_texture_kernel(mode)
        device = VortexDevice(config, driver=driver)
        run = kernel.run(device, size=16 * 16)
        assert run.passed
        return run.report

    scalar = run("simx:engine=scalar")
    vector = run("simx")
    assert diff_execution_reports(scalar, vector) == []


# -- multicore + barriers -----------------------------------------------------------------


def test_multicore_global_barriers_bit_identical():
    _differential("sgemm", 8 * 8, _fig_config(num_cores=2))


def test_divergent_kernel_bit_identical():
    """bfs diverges (split/join) and communicates through memory flags."""
    _differential("bfs", 64, _fig_config())


# -- scheduler policies: identical across engines on every policy -------------------------


@pytest.mark.parametrize(
    "policy", ["greedy-then-oldest", "loose-round-robin", "cache-locality"]
)
def test_scheduler_policies_bit_identical_across_engines(policy):
    """The policy axis changes the schedule, not the engines' agreement."""
    config = _fig_config().with_scheduler_policy(policy)
    _differential("sgemm", 8 * 8, config)


# -- retry wall: port-limited configs through the batched + fast-forward path -------------


@pytest.mark.parametrize("kernel", ["sgemm", "sfilter"])
def test_port_limited_retry_wall_bit_identical(kernel):
    """1 port x 32 threads — the retry-storm regime the batched request path
    and the cycle fast-forward target — must stay bit-identical."""
    config = _fig_config(num_warps=4, num_threads=32, dcache_ports=1)
    _differential(kernel, 8 * 8, config)


# -- L2/L3 hierarchy: multi-level fills under the differential microscope -----------------


@pytest.mark.parametrize(
    "enable_l2,enable_l3", [(True, False), (True, True)], ids=["l2", "l2l3"]
)
def test_cache_hierarchy_bit_identical(enable_l2, enable_l3):
    config = _fig_config().with_cache_hierarchy(enable_l2=enable_l2, enable_l3=enable_l3)
    result = _differential("sgemm", 8 * 8, config)
    counters = result.vector.report.counters
    assert "l2_0" in counters and counters["l2_0"].get("attempts", 0) > 0
    assert ("l3" in counters) == enable_l3


# -- fast-forward / batched-request knobs: every combination agrees ------------------------


@pytest.mark.parametrize(
    "driver",
    [
        "simx:fastforward=off",
        "simx:requests=perlane",
        "simx:fastforward=off,requests=perlane",
    ],
)
@pytest.mark.parametrize("hierarchy", [False, True], ids=["l1", "l2l3"])
def test_fastforward_and_request_knobs_bit_identical(driver, hierarchy):
    """Toggling the batched path or the fast-forward must never change a
    single cycle or counter — they are pure host-speed optimizations."""
    from repro.kernels import KERNELS

    config = _fig_config(num_warps=4, num_threads=32, dcache_ports=1)
    if hierarchy:
        config = config.with_cache_hierarchy(enable_l2=True, enable_l3=True)

    def run(spec):
        device = VortexDevice(config, driver=spec)
        run = KERNELS["sgemm"]().run(device, size=8 * 8)
        assert run.passed
        return run.report

    assert diff_execution_reports(run(driver), run("simx")) == []


def test_fastforward_and_request_knob_validation():
    from repro.runtime.simx import SimxDriver

    config = _fig_config()
    driver = SimxDriver(config, fastforward="off", requests="perlane")
    assert driver.processor.fast_forward is False
    assert driver.processor.cores[0].batch_requests is False
    assert SimxDriver(config).processor.fast_forward is True
    assert SimxDriver(config).processor.cores[0].batch_requests is True
    with pytest.raises(ValueError):
        SimxDriver(config, fastforward="sometimes")
    with pytest.raises(ValueError):
        SimxDriver(config, requests="vectorized")
    # The knobs are reachable through a driver spec string as well.
    device = VortexDevice(config, driver="simx:fastforward=off,requests=perlane")
    assert device.driver.processor.fast_forward is False
    assert device.driver.processor.cores[0].batch_requests is False


def test_timing_engine_knob_and_report_tagging():
    """The driver knob is reachable via the spec string and via kwargs."""
    from repro.kernels import KERNELS
    from repro.runtime.simx import SimxDriver

    config = _fig_config()

    def run(driver):
        device = VortexDevice(config, driver=driver)
        run = KERNELS["vecadd"]().run(device, size=64)
        assert run.passed
        return run.report

    assert run("simx:engine=scalar").engine == "timing-scalar"
    assert run("simx").engine == "timing-vector"
    driver = SimxDriver(config, engine="scalar")
    assert driver.processor.cores[0].engine == "scalar"
    with pytest.raises(ValueError):
        SimxDriver(config, engine="warp")
