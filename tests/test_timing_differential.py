"""Differential tests: the vectorized SIMX timing engine vs the scalar reference.

``TimingCore(engine="vector")`` executes issued warps through the vectorized
emulator's compiled whole-warp lane plans; ``engine="scalar"`` steps the
per-thread reference emulator.  The timing model (scheduler, scoreboard,
latencies, caches, MSHRs) is shared, so the two engines must report
**bit-identical** cycles, instruction counts and every performance counter
on every configuration the paper's figures sweep — these tests hold them to
that across the Figure 14 (core design points), Figure 19 (virtual
multi-port caches) and Figure 20 (texture acceleration) configurations.
"""

from __future__ import annotations

import pytest

from repro.common.config import CORE_DESIGN_POINTS, CacheConfig, MemoryConfig, VortexConfig
from repro.kernels import KERNELS
from repro.kernels.texture import hardware_texture_kernel, software_texture_kernel
from repro.runtime.device import VortexDevice


def _fig_config(
    num_cores: int = 1,
    num_warps: int = 4,
    num_threads: int = 4,
    dcache_ports: int = 1,
) -> VortexConfig:
    """The benchmark harness's configuration shape (see benchmarks/harness.py)."""
    return VortexConfig(
        num_cores=num_cores,
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=dcache_ports),
        memory=MemoryConfig(latency=100, bandwidth=1),
    ).with_warps_threads(num_warps, num_threads)


def _run(driver: str, kernel_name: str, size: int, config: VortexConfig):
    device = VortexDevice(config, driver=driver)
    run = KERNELS[kernel_name]().run(device, size=size)
    assert run.passed, f"{kernel_name} failed verification on {driver}"
    return run.report


def _assert_reports_identical(scalar, vector) -> None:
    """Every timing-visible quantity must match bit for bit."""
    assert scalar.cycles == vector.cycles
    assert scalar.instructions == vector.instructions
    assert scalar.thread_instructions == vector.thread_instructions
    assert set(scalar.counters) == set(vector.counters)
    for component, counters in scalar.counters.items():
        assert counters == vector.counters[component], component


# -- Figure 14: core design-space points ------------------------------------------------


@pytest.mark.parametrize("label", list(CORE_DESIGN_POINTS))
def test_fig14_design_points_bit_identical(label):
    warps, threads = CORE_DESIGN_POINTS[label]
    config = _fig_config(num_warps=warps, num_threads=threads)
    scalar = _run("simx-scalar", "sgemm", 8 * 8, config)
    vector = _run("simx", "sgemm", 8 * 8, config)
    _assert_reports_identical(scalar, vector)


@pytest.mark.parametrize("kernel,size", [("vecadd", 128), ("saxpy", 128), ("nearn", 128)])
def test_fig14_kernels_bit_identical(kernel, size):
    config = _fig_config()
    _assert_reports_identical(
        _run("simx-scalar", kernel, size, config), _run("simx", kernel, size, config)
    )


# -- Figure 19: virtual multi-port caches ------------------------------------------------


@pytest.mark.parametrize("ports", [1, 2, 4])
def test_fig19_port_counts_bit_identical(ports):
    config = _fig_config(dcache_ports=ports)
    scalar = _run("simx-scalar", "sfilter", 8 * 8, config)
    vector = _run("simx", "sfilter", 8 * 8, config)
    _assert_reports_identical(scalar, vector)
    # The Figure 19 metric itself (bank utilization inputs) must agree.
    assert scalar.counters["dcache0"].get("bank_conflicts", 0) == vector.counters[
        "dcache0"
    ].get("bank_conflicts", 0)


# -- Figure 20: texture acceleration ------------------------------------------------------


@pytest.mark.parametrize("mode", ["point", "bilinear", "trilinear"])
@pytest.mark.parametrize("use_hw", [True, False])
def test_fig20_texture_modes_bit_identical(mode, use_hw):
    config = _fig_config()

    def run(driver):
        kernel = hardware_texture_kernel(mode) if use_hw else software_texture_kernel(mode)
        device = VortexDevice(config, driver=driver)
        run = kernel.run(device, size=16 * 16)
        assert run.passed
        return run.report

    _assert_reports_identical(run("simx-scalar"), run("simx"))


# -- multicore + barriers -----------------------------------------------------------------


def test_multicore_global_barriers_bit_identical():
    config = _fig_config(num_cores=2)
    _assert_reports_identical(
        _run("simx-scalar", "sgemm", 8 * 8, config), _run("simx", "sgemm", 8 * 8, config)
    )


def test_divergent_kernel_bit_identical():
    """bfs diverges (split/join) and communicates through memory flags."""
    config = _fig_config()
    _assert_reports_identical(
        _run("simx-scalar", "bfs", 64, config), _run("simx", "bfs", 64, config)
    )


def test_timing_engine_knob_and_report_tagging():
    """The driver knob is reachable via both the driver string and kwargs."""
    from repro.runtime.simx import SimxDriver

    config = _fig_config()
    scalar_report = _run("simx-scalar", "vecadd", 64, config)
    vector_report = _run("simx", "vecadd", 64, config)
    assert scalar_report.engine == "timing-scalar"
    assert vector_report.engine == "timing-vector"
    driver = SimxDriver(config, engine="scalar")
    assert driver.processor.cores[0].engine == "scalar"
    with pytest.raises(ValueError):
        SimxDriver(config, engine="warp")
