"""Property-based tests for the SIMT execution model.

These check the invariants the Vortex extension is built around: arbitrary
divergence patterns handled by ``split``/``join`` always produce the same
per-thread results as a scalar reference, and the device-side runtime
distributes every task exactly once regardless of the machine geometry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import VortexConfig
from repro.core.core import SimtCore
from repro.isa.builder import ProgramBuilder
from repro.isa.csr import CSR
from repro.isa.registers import Reg
from repro.kernels import VecAddKernel
from repro.mem.memory import MainMemory
from repro.runtime.device import VortexDevice

BASE = 0x8000_0000
RESULT_ADDR = 0x0002_0000
PRED_ADDR = 0x0003_0000


def _run_divergence_program(predicates):
    """Run an if/else region where each thread's predicate comes from memory.

    Threads with a true predicate write ``100 + tid``; the others write
    ``200 + tid``.  Returns the per-thread results.
    """
    num_threads = len(predicates)
    config = VortexConfig().with_warps_threads(1, num_threads)
    core = SimtCore(core_id=0, config=config, memory=MainMemory(), processor=None)

    asm = ProgramBuilder(base=BASE)
    asm.csr_read(Reg.t0, CSR.NUM_THREADS)
    asm.tmc(Reg.t0)
    asm.csr_read(Reg.t1, CSR.THREAD_ID)
    asm.slli(Reg.t2, Reg.t1, 2)
    # Load this thread's predicate.
    asm.li(Reg.a0, PRED_ADDR)
    asm.add(Reg.a0, Reg.a0, Reg.t2)
    asm.lw(Reg.t3, 0, Reg.a0)
    # Result slot.
    asm.li(Reg.a1, RESULT_ADDR)
    asm.add(Reg.a1, Reg.a1, Reg.t2)
    asm.split(Reg.t3)
    asm.beqz(Reg.t3, "else_side")
    asm.addi(Reg.t4, Reg.t1, 100)
    asm.sw(Reg.t4, 0, Reg.a1)
    asm.join()
    asm.j("merge")
    asm.label("else_side")
    asm.addi(Reg.t4, Reg.t1, 200)
    asm.sw(Reg.t4, 0, Reg.a1)
    asm.join()
    asm.label("merge")
    asm.li(Reg.t6, 0)
    asm.tmc(Reg.t6)
    program = asm.assemble()

    core.memory.load_words(program.base, program.words)
    core.memory.load_words(PRED_ADDR, [1 if p else 0 for p in predicates])
    core.reset(program.entry)
    core.run()
    return core.memory.read_words(RESULT_ADDR, num_threads)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.booleans(), min_size=2, max_size=8))
def test_split_join_matches_scalar_reference_for_any_divergence(predicates):
    results = _run_divergence_program(predicates)
    expected = [100 + tid if pred else 200 + tid for tid, pred in enumerate(predicates)]
    assert results == expected


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),   # warps
    st.integers(min_value=1, max_value=4),   # threads
    st.integers(min_value=1, max_value=60),  # tasks
)
def test_task_distribution_covers_every_task_exactly_once(warps, threads, tasks):
    """The spawn runtime executes each task id exactly once for any geometry."""
    config = VortexConfig().with_warps_threads(warps, threads)
    device = VortexDevice(config, driver="funcsim")

    kernel = VecAddKernel()
    run = kernel.run(device, size=tasks)
    assert run.passed

    a, b = run.context["a"], run.context["b"]
    result = run.context["out"].read(np.uint32, tasks)
    assert np.array_equal(result, a + b)


@pytest.mark.parametrize("warps,threads", [(1, 1), (2, 2), (8, 2), (2, 8), (8, 4)])
def test_kernel_correct_across_machine_geometries(warps, threads):
    config = VortexConfig().with_warps_threads(warps, threads)
    device = VortexDevice(config, driver="funcsim")
    run = VecAddKernel().run(device, size=64)
    assert run.passed


def test_nested_divergence_three_levels_deep():
    """Nested split/join regions reconverge correctly (IPDOM stack depth 3+)."""
    num_threads = 8
    config = VortexConfig().with_warps_threads(1, num_threads)
    core = SimtCore(core_id=0, config=config, memory=MainMemory(), processor=None)

    asm = ProgramBuilder(base=BASE)
    asm.csr_read(Reg.t0, CSR.NUM_THREADS)
    asm.tmc(Reg.t0)
    asm.csr_read(Reg.t1, CSR.THREAD_ID)
    asm.slli(Reg.t2, Reg.t1, 2)
    asm.li(Reg.a1, RESULT_ADDR)
    asm.add(Reg.a1, Reg.a1, Reg.t2)
    asm.li(Reg.t5, 0)

    # Level 1: tid >= 4; level 2: tid & 2; level 3: tid & 1.  Accumulate a
    # distinct weight on each taken level, so each thread ends with its tid.
    def nested(bit_value, weight, level):
        then_label = asm.new_label(f"then{level}")
        end_label = asm.new_label(f"end{level}")
        asm.andi(Reg.t3, Reg.t1, bit_value)
        asm.snez(Reg.t3, Reg.t3)
        asm.split(Reg.t3)
        asm.beqz(Reg.t3, then_label)
        asm.addi(Reg.t5, Reg.t5, weight)
        if level < 3:
            nested(bit_value >> 1, weight >> 1, level + 1)
        asm.join()
        asm.j(end_label)
        asm.label(then_label)
        if level < 3:
            nested(bit_value >> 1, weight >> 1, level + 1)
        asm.join()
        asm.label(end_label)

    nested(4, 4, 1)
    asm.sw(Reg.t5, 0, Reg.a1)
    asm.li(Reg.t6, 0)
    asm.tmc(Reg.t6)
    program = asm.assemble()

    core.memory.load_words(program.base, program.words)
    core.reset(program.entry)
    core.run()
    results = core.memory.read_words(RESULT_ADDR, num_threads)
    # Each nesting level adds its bit's weight only on the taken side, but the
    # untaken side still explores the deeper levels, so every thread
    # accumulates exactly the bits of its own thread id.
    assert results == list(range(num_threads))
