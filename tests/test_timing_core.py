"""Tests for the cycle-level (SIMX) timing behaviour."""


from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.kernels import SgemmKernel, VecAddKernel
from repro.runtime.device import VortexDevice


def _run(kernel_cls, config, size=64):
    device = VortexDevice(config, driver="simx")
    run = kernel_cls().run(device, size=size)
    assert run.passed
    return run.report


def test_ipc_bounded_by_thread_count():
    config = VortexConfig()
    report = _run(VecAddKernel, config)
    assert 0 < report.ipc <= config.core.num_threads


def test_more_warps_hide_memory_latency():
    slow_memory = MemoryConfig(latency=150, bandwidth=1)
    few_warps = VortexConfig(memory=slow_memory).with_warps_threads(1, 4)
    many_warps = VortexConfig(memory=slow_memory).with_warps_threads(8, 4)
    assert _run(VecAddKernel, many_warps).ipc > _run(VecAddKernel, few_warps).ipc


def test_higher_memory_latency_slows_execution():
    fast = VortexConfig(memory=MemoryConfig(latency=10, bandwidth=1))
    slow = VortexConfig(memory=MemoryConfig(latency=400, bandwidth=1))
    assert _run(VecAddKernel, slow).cycles > _run(VecAddKernel, fast).cycles


def test_more_cores_reduce_cycles_for_compute_kernel():
    single = VortexConfig(num_cores=1)
    quad = VortexConfig(num_cores=4)
    single_cycles = _run(SgemmKernel, single, size=16 * 16).cycles
    quad_cycles = _run(SgemmKernel, quad, size=16 * 16).cycles
    assert quad_cycles < single_cycles
    # Aggregate IPC should also rise with the core count.
    assert _run(SgemmKernel, quad, size=16 * 16).ipc > _run(SgemmKernel, single, size=16 * 16).ipc


def test_scoreboard_and_cache_counters_populated():
    report = _run(SgemmKernel, VortexConfig(), size=8 * 8)
    core = report.counters["core0"]
    assert core["scoreboard_stalls"] > 0
    assert core["loads"] > 0
    dcache = report.counters["dcache0"]
    assert dcache["attempts"] >= dcache["accepted"] > 0


def test_more_virtual_ports_do_not_hurt_performance():
    base = VortexConfig(dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1))
    ported = base.with_dcache_ports(4)
    cycles_1p = _run(SgemmKernel, base, size=12 * 12).cycles
    cycles_4p = _run(SgemmKernel, ported, size=12 * 12).cycles
    assert cycles_4p <= cycles_1p * 1.02


def test_dcache_bank_utilization_reported():
    report = _run(VecAddKernel, VortexConfig(), size=128)
    dcache = report.counters["dcache0"]
    total = dcache["accepted"] + dcache.get("bank_conflicts", 0)
    assert total > 0


def test_report_summary_format():
    report = _run(VecAddKernel, VortexConfig(), size=32)
    text = report.summary()
    assert "simx" in text and "IPC" in text
    assert report.warp_ipc <= report.ipc
