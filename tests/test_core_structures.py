"""Tests for the SIMT core building blocks: warps, IPDOM stack, barriers,
wavefront scheduler and scoreboard."""

import pytest
from hypothesis import given, strategies as st

from repro.core.barrier import BarrierTable, GLOBAL_BARRIER_FLAG, is_global_barrier, local_barrier_index
from repro.core.ipdom import IpdomOverflow, IpdomStack, IpdomUnderflow
from repro.core.scheduler import WavefrontScheduler
from repro.core.scoreboard import Scoreboard
from repro.core.warp import RegisterFile, Warp


# -- register file / warp -------------------------------------------------------------------


def test_x0_is_hardwired_to_zero():
    regs = RegisterFile(num_threads=2)
    regs.write_int(0, 0, 1234)
    assert regs.read_int(0, 0) == 0


def test_registers_are_per_thread():
    regs = RegisterFile(num_threads=4)
    for thread in range(4):
        regs.write_int(thread, 5, thread * 10)
        regs.write_float(thread, 3, thread + 100)
    assert [regs.read_int(t, 5) for t in range(4)] == [0, 10, 20, 30]
    assert [regs.read_float(t, 3) for t in range(4)] == [100, 101, 102, 103]


def test_register_values_truncate_to_32_bits():
    regs = RegisterFile(num_threads=1)
    regs.write_int(0, 1, 2**32 + 5)
    assert regs.read_int(0, 1) == 5


def test_broadcast_int():
    regs = RegisterFile(num_threads=4)
    regs.broadcast_int(7, 42)
    assert all(regs.read_int(t, 7) == 42 for t in range(4))


def test_warp_tmc_controls_thread_mask_and_activity():
    warp = Warp(warp_id=0, num_threads=4)
    warp.spawn(0x80000000)
    assert warp.tmask == 0b1111
    warp.set_thread_count(2)
    assert warp.tmask == 0b0011
    assert warp.active_threads() == [0, 1]
    warp.set_thread_count(0)
    assert not warp.active
    assert not warp.schedulable


def test_warp_spawn_with_partial_mask():
    warp = Warp(warp_id=1, num_threads=8)
    warp.spawn(0x100, tmask=0b1)
    assert warp.num_active_threads() == 1
    assert warp.pc == 0x100
    assert warp.schedulable


def test_warp_barrier_blocks_scheduling():
    warp = Warp(warp_id=0, num_threads=4)
    warp.spawn(0)
    warp.at_barrier = True
    assert not warp.schedulable


# -- IPDOM stack -----------------------------------------------------------------------------


def test_ipdom_push_pop_lifo():
    stack = IpdomStack(depth=4)
    stack.push(0b1111, pc=None)
    stack.push(0b0011, pc=0x20)
    entry = stack.pop()
    assert entry.tmask == 0b0011 and entry.pc == 0x20 and not entry.is_fallthrough
    entry = stack.pop()
    assert entry.is_fallthrough and entry.tmask == 0b1111
    assert stack.empty


def test_ipdom_overflow_and_underflow():
    stack = IpdomStack(depth=2)
    stack.push(1)
    stack.push(2)
    with pytest.raises(IpdomOverflow):
        stack.push(3)
    stack.pop()
    stack.pop()
    with pytest.raises(IpdomUnderflow):
        stack.pop()


def test_ipdom_tracks_max_occupancy():
    stack = IpdomStack(depth=8)
    for _ in range(3):
        stack.push(1)
    stack.pop()
    assert stack.max_occupancy == 3


# -- barriers ---------------------------------------------------------------------------------


def test_barrier_releases_when_count_reached():
    table = BarrierTable(num_barriers=4)
    assert table.arrive(0, expected=3, participant="w0") == []
    assert table.arrive(0, expected=3, participant="w1") == []
    released = table.arrive(0, expected=3, participant="w2")
    assert set(released) == {"w0", "w1", "w2"}
    assert not table.any_waiting


def test_barrier_with_count_one_releases_immediately():
    table = BarrierTable()
    assert table.arrive(2, expected=1, participant="solo") == ["solo"]


def test_barriers_are_independent_per_id():
    table = BarrierTable(num_barriers=8)
    table.arrive(0, 2, "a")
    table.arrive(1, 2, "b")
    assert table.pending_barriers() == [0, 1]
    assert set(table.arrive(0, 2, "c")) == {"a", "c"}
    assert table.waiting_on(1) == ["b"]


def test_barrier_first_arrival_count_is_authoritative_smaller_latecomer():
    """Regression: a latecomer expecting *fewer* arrivals used to clobber the
    count and early-release the barrier."""
    import pytest

    from repro.core.barrier import BarrierCountMismatch

    table = BarrierTable(num_barriers=4)
    assert table.arrive(0, expected=3, participant="w0") == []
    with pytest.raises(BarrierCountMismatch):
        table.arrive(0, expected=2, participant="w1")
    assert table.mismatches == 1
    # The original barrier keeps filling toward the first arrival's count.
    assert table.arrive(0, expected=3, participant="w2") == []
    assert set(table.arrive(0, expected=3, participant="w3")) == {"w0", "w2", "w3"}


def test_barrier_first_arrival_count_is_authoritative_larger_latecomer():
    """Regression: a latecomer expecting *more* arrivals used to raise the
    count and strand the earlier waiters."""
    import pytest

    from repro.core.barrier import BarrierCountMismatch

    table = BarrierTable(num_barriers=4)
    assert table.arrive(1, expected=2, participant="w0") == []
    with pytest.raises(BarrierCountMismatch):
        table.arrive(1, expected=4, participant="w1")
    # A count-1 latecomer on a filling barrier is also a mismatch, not an
    # immediate self-release.
    with pytest.raises(BarrierCountMismatch):
        table.arrive(1, expected=1, participant="w2")
    assert set(table.arrive(1, expected=2, participant="w3")) == {"w0", "w3"}
    # Once released, the id can be reused with a fresh count.
    assert table.arrive(1, expected=1, participant="solo") == ["solo"]


def test_global_barrier_flag_helpers():
    assert is_global_barrier(GLOBAL_BARRIER_FLAG | 3)
    assert not is_global_barrier(3)
    assert local_barrier_index(GLOBAL_BARRIER_FLAG | 3) == 3


# -- wavefront scheduler -------------------------------------------------------------------------


def test_scheduler_round_robins_over_active_warps():
    scheduler = WavefrontScheduler(num_warps=4)
    for warp_id in range(4):
        scheduler.set_active(warp_id, True)
    picks = [scheduler.select() for _ in range(8)]
    assert sorted(picks[:4]) == [0, 1, 2, 3]
    assert sorted(picks[4:]) == [0, 1, 2, 3]


def test_scheduler_skips_stalled_and_barrier_warps():
    scheduler = WavefrontScheduler(num_warps=4)
    for warp_id in range(4):
        scheduler.set_active(warp_id, True)
    scheduler.set_stalled(1, True)
    scheduler.set_at_barrier(2, True)
    picks = {scheduler.select() for _ in range(4)}
    assert picks <= {0, 3}
    scheduler.set_stalled(1, False)
    scheduler.set_at_barrier(2, False)
    picks = [scheduler.select() for _ in range(4)]
    assert set(picks) == {0, 1, 2, 3}


def test_scheduler_returns_none_when_nothing_ready():
    scheduler = WavefrontScheduler(num_warps=2)
    assert scheduler.select() is None
    scheduler.set_active(0, True)
    scheduler.set_stalled(0, True)
    assert scheduler.select() is None
    assert scheduler.all_stalled


def test_scheduler_two_level_refill_counted():
    scheduler = WavefrontScheduler(num_warps=2)
    scheduler.set_active(0, True)
    scheduler.set_active(1, True)
    for _ in range(6):
        scheduler.select()
    assert scheduler.perf.get("refills") >= 3


# -- scoreboard -----------------------------------------------------------------------------------


def test_scoreboard_reserve_release():
    scoreboard = Scoreboard(num_warps=2)
    scoreboard.reserve(0, 5)
    assert scoreboard.is_busy(0, 5)
    assert not scoreboard.is_busy(1, 5)
    assert scoreboard.any_busy(0, [(5, False), (6, False)])
    scoreboard.release(0, 5)
    assert not scoreboard.is_busy(0, 5)


def test_scoreboard_separates_register_files():
    scoreboard = Scoreboard(num_warps=1)
    scoreboard.reserve(0, 3, floating=True)
    assert scoreboard.is_busy(0, 3, floating=True)
    assert not scoreboard.is_busy(0, 3, floating=False)


def test_scoreboard_ignores_x0():
    scoreboard = Scoreboard(num_warps=1)
    scoreboard.reserve(0, 0)
    assert not scoreboard.is_busy(0, 0)
    assert scoreboard.busy_count(0) == 0


@given(st.lists(st.integers(min_value=1, max_value=31), min_size=1, max_size=20))
def test_scoreboard_clear_empties_everything(registers):
    scoreboard = Scoreboard(num_warps=1)
    for register in registers:
        scoreboard.reserve(0, register)
    scoreboard.clear()
    assert scoreboard.busy_count(0) == 0
