"""Tests for device memory and the DRAM timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import MemoryConfig
from repro.mem.dram import DramModel, MemRequest
from repro.mem.memory import MainMemory, MemoryAccessError


# -- MainMemory --------------------------------------------------------------------------


def test_uninitialized_memory_reads_zero():
    memory = MainMemory()
    assert memory.read_word(0x1000) == 0
    assert memory.read_bytes(0xFFFF_0000, 8) == bytes(8)


def test_word_roundtrip_and_alignment():
    memory = MainMemory()
    memory.write_word(0x100, 0xDEADBEEF)
    assert memory.read_word(0x100) == 0xDEADBEEF
    with pytest.raises(MemoryAccessError):
        memory.read_word(0x102)
    with pytest.raises(MemoryAccessError):
        memory.write_word(0x101, 1)


def test_half_and_byte_access():
    memory = MainMemory()
    memory.write_half(0x200, 0xBEEF)
    memory.write_byte(0x202, 0x7F)
    assert memory.read_half(0x200) == 0xBEEF
    assert memory.read_byte(0x202) == 0x7F
    with pytest.raises(MemoryAccessError):
        memory.read_half(0x201)


def test_cross_page_write_and_read():
    memory = MainMemory()
    data = bytes(range(100)) * 100
    memory.write_bytes(4096 - 50, data)
    assert memory.read_bytes(4096 - 50, len(data)) == data


def test_load_and_read_words():
    memory = MainMemory()
    memory.load_words(0x400, [1, 2, 3, 0xFFFFFFFF])
    assert memory.read_words(0x400, 4) == [1, 2, 3, 0xFFFFFFFF]


def test_fill_and_allocated_bytes():
    memory = MainMemory()
    memory.fill(0x1000, 256, 0xAB)
    assert memory.read_byte(0x10FF) == 0xAB
    assert memory.allocated_bytes >= 4096


def test_negative_read_size_rejected():
    with pytest.raises(MemoryAccessError):
        MainMemory().read_bytes(0, -1)


@given(st.integers(min_value=0, max_value=2**32 - 8), st.binary(min_size=1, max_size=64))
def test_byte_roundtrip_property(address, data):
    memory = MainMemory()
    memory.write_bytes(address, data)
    assert memory.read_bytes(address, len(data)) == data


# -- DramModel ---------------------------------------------------------------------------


def test_dram_fixed_latency():
    dram = DramModel(MemoryConfig(latency=10, bandwidth=1))
    assert dram.send(MemRequest(address=0x40, tag="a"))
    responses = []
    for _ in range(9):
        responses.extend(dram.tick())
    assert not responses
    responses.extend(dram.tick())
    assert len(responses) == 1 and responses[0].tag == "a"


def test_dram_bandwidth_limits_responses_per_cycle():
    dram = DramModel(MemoryConfig(latency=1, bandwidth=2, request_queue_size=16))
    for index in range(6):
        assert dram.send(MemRequest(address=index, tag=index))
    completed = []
    cycles = 0
    while len(completed) < 6:
        completed.extend(dram.tick())
        cycles += 1
    assert cycles == 3  # 6 requests at 2 per cycle


def test_dram_queue_backpressure():
    dram = DramModel(MemoryConfig(latency=100, bandwidth=1, request_queue_size=2))
    assert dram.send(MemRequest(address=0))
    assert dram.send(MemRequest(address=1))
    assert not dram.can_accept
    assert not dram.send(MemRequest(address=2))
    assert dram.perf.get("rejected") == 1


def test_dram_average_latency_tracks_queueing():
    dram = DramModel(MemoryConfig(latency=5, bandwidth=1, request_queue_size=8))
    for index in range(4):
        dram.send(MemRequest(address=index))
    remaining = 4
    while remaining:
        remaining -= len(dram.tick())
    # The first response sees the base latency, later ones also wait for bandwidth.
    assert dram.average_latency >= 5
    assert dram.pending == 0


def test_dram_preserves_request_order():
    dram = DramModel(MemoryConfig(latency=3, bandwidth=1))
    for tag in ("x", "y", "z"):
        dram.send(MemRequest(address=0, tag=tag))
    seen = []
    for _ in range(10):
        seen.extend(response.tag for response in dram.tick())
    assert seen == ["x", "y", "z"]
