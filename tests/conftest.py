"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.mem.memory import MainMemory
from repro.runtime.device import VortexDevice


@pytest.fixture
def small_config() -> VortexConfig:
    """A small 4W-4T single-core configuration used across timing tests."""
    return VortexConfig(
        num_cores=1,
        dcache=CacheConfig(size=8 * 1024, num_banks=4, mshr_size=8),
        icache=CacheConfig(size=4 * 1024, num_banks=1),
        memory=MemoryConfig(latency=40, bandwidth=1),
    )


@pytest.fixture
def memory() -> MainMemory:
    return MainMemory()


@pytest.fixture
def funcsim_device(small_config) -> VortexDevice:
    """A device backed by the functional driver (fast, no timing)."""
    return VortexDevice(small_config, driver="funcsim")


@pytest.fixture
def simx_device(small_config) -> VortexDevice:
    """A device backed by the cycle-level driver."""
    return VortexDevice(small_config, driver="simx")
