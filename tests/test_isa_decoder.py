"""Decoder tests: every supported instruction encodes and decodes back."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.decoder import DecodeError, decode
from repro.isa.instructions import SPEC_BY_MNEMONIC, all_specs
from repro.isa.registers import Reg


def _emit_any(asm: ProgramBuilder, mnemonic: str) -> None:
    """Emit one instance of ``mnemonic`` with representative operands."""
    spec = SPEC_BY_MNEMONIC[mnemonic]
    syntax = spec.syntax
    if syntax == ("rd", "rs1", "rs2"):
        asm.emit(mnemonic, 5, 6, 7)
    elif syntax == ("rd", "rs1", "imm"):
        asm.emit(mnemonic, 5, 6, -7)
    elif syntax == ("rd", "rs1", "shamt"):
        asm.emit(mnemonic, 5, 6, 3)
    elif syntax == ("rd", "imm"):
        asm.emit(mnemonic, 5, 0x12345000)
    elif syntax == ("rd", "target"):
        asm.emit(mnemonic, 1, 8)
    elif syntax == ("rs1", "rs2", "target"):
        asm.emit(mnemonic, 5, 6, 8)
    elif syntax == ("rd", "mem"):
        asm.emit(mnemonic, 5, 4, Reg.sp)
    elif syntax == ("rs2", "mem"):
        asm.emit(mnemonic, 5, 4, Reg.sp)
    elif syntax == ("rd", "csr", "rs1"):
        asm.emit(mnemonic, 5, 0xCC0, 6)
    elif syntax == ("rd", "csr", "zimm"):
        asm.emit(mnemonic, 5, 0xCC0, 3)
    elif syntax == ("rd", "rs1", "rs2", "rs3"):
        asm.emit(mnemonic, 5, 6, 7, 8)
    elif syntax == ("rd", "rs1"):
        asm.emit(mnemonic, 5, 6)
    elif syntax == ("rs1",):
        asm.emit(mnemonic, 5)
    elif syntax == ("rs1", "rs2"):
        asm.emit(mnemonic, 5, 6)
    elif syntax == ():
        asm.emit(mnemonic)
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unhandled syntax {syntax} for {mnemonic}")


@pytest.mark.parametrize("mnemonic", sorted(SPEC_BY_MNEMONIC))
def test_encode_decode_roundtrip(mnemonic):
    asm = ProgramBuilder(base=0)
    _emit_any(asm, mnemonic)
    program = asm.assemble()
    decoded = decode(program.words[0])
    assert decoded.mnemonic == mnemonic


def test_decode_rejects_garbage():
    with pytest.raises(DecodeError):
        decode(0x0000_0000)
    with pytest.raises(DecodeError):
        decode(0xFFFF_FFFF)


def test_decoded_fields_for_loads():
    asm = ProgramBuilder(base=0)
    asm.lw(Reg.t0, -12, Reg.a0)
    decoded = decode(asm.assemble().words[0])
    assert decoded.rd == int(Reg.t0)
    assert decoded.rs1 == int(Reg.a0)
    assert decoded.imm == -12


def test_decoded_csr_address():
    asm = ProgramBuilder(base=0)
    asm.csr_read(Reg.t3, 0xCC2)
    decoded = decode(asm.assemble().words[0])
    assert decoded.csr == 0xCC2
    assert decoded.mnemonic == "csrrs"


def test_decoded_tex_stage():
    asm = ProgramBuilder(base=0)
    asm.tex(Reg.t0, "fa0", "fa1", "fa2", stage=1)
    decoded = decode(asm.assemble().words[0])
    assert decoded.mnemonic == "tex"
    assert decoded.tex_stage == 1


def test_unsigned_conversion_variants_distinguished():
    asm = ProgramBuilder(base=0)
    asm.fcvt_wu_s(Reg.t0, "fa0")
    asm.fcvt_w_s(Reg.t1, "fa0")
    program = asm.assemble()
    assert decode(program.words[0]).mnemonic == "fcvt.wu.s"
    assert decode(program.words[1]).mnemonic == "fcvt.w.s"


def test_every_spec_roundtrips_total_count():
    assert len(all_specs()) == len(SPEC_BY_MNEMONIC)
