"""Tests for the tracing subsystem (``repro.trace``).

Four contracts are enforced here:

* **Spec plumbing** — the ``trace`` / ``trace_file`` / ``trace_channels``
  driver-spec options build the right sinks, validate loudly, and filter
  channels.
* **Determinism matrix** — the expanded event stream is bit-identical
  across {vector, scalar} × {fastforward on, off} on three kernels; the
  fast-forward runs additionally carry synthesized ``core/skip`` markers
  that expand away.
* **Reconciliation** — a full unfiltered trace reproduces every aggregate
  performance counter bit-exactly (:func:`repro.trace.attribution.reconcile`),
  including on a multi-core barrier workload.
* **Sink round-trips** — CSV and JSONL are lossless encodings of any event
  stream (Hypothesis), and VCD re-parses to its own change list.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.core.processor import TimingProcessor
from repro.isa.builder import ProgramBuilder
from repro.isa.csr import CSR
from repro.isa.registers import Reg
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice
from repro.trace import __main__ as trace_cli
from repro.trace.attribution import attribute_stalls, reconcile, summarize
from repro.trace.bus import TraceBus
from repro.trace.events import CHANNELS, NO_WARP, TraceEvent, expand_skips
from repro.trace.sinks import (
    CsvSink,
    JsonlSink,
    MemorySink,
    encode_vcd,
    load_trace,
    parse_csv,
    parse_jsonl,
    parse_vcd,
    vcd_changes,
)


def _config(num_cores: int = 1) -> VortexConfig:
    """The differential-grid shape: banked dcache, visible memory latency."""
    return VortexConfig(
        num_cores=num_cores,
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
        memory=MemoryConfig(latency=100, bandwidth=1),
    ).with_warps_threads(4, 4)


def _traced_run(kernel: str, size: int, spec: str, config: VortexConfig | None = None):
    """Run a kernel under ``spec``; returns ``(driver, events)``.

    ``events`` is the collected stream for ``trace=mem`` runs and ``None``
    for file sinks (read those back through their parser).
    """
    device = VortexDevice(config or _config(), driver=spec)
    run = KERNELS[kernel]().run(device, size=size)
    assert run.passed
    collected = getattr(device.driver.trace_sink, "events", None)
    return device.driver, list(collected) if collected is not None else None


# ---------------------------------------------------------------------------
# Driver-spec plumbing


class TestTraceSpecOptions:
    def test_mem_mode_collects_events(self):
        driver, events = _traced_run("vecadd", 64, "simx:trace=mem")
        assert driver.trace_bus is not None
        assert driver.trace_bus.events_emitted == len(events)
        assert events and all(isinstance(e, TraceEvent) for e in events)
        assert {e.channel for e in events} <= set(CHANNELS)

    def test_file_modes_write_parseable_traces(self, tmp_path):
        for mode, parse in (("csv", parse_csv), ("jsonl", parse_jsonl)):
            path = tmp_path / f"trace.{mode}"
            driver, _ = _traced_run(
                "vecadd", 64, f"simx:trace={mode},trace_file={path}"
            )
            events = parse(path.read_text())
            assert len(events) == driver.trace_bus.events_emitted
            assert load_trace(path) == events

    def test_vcd_mode_writes_valid_vcd(self, tmp_path):
        path = tmp_path / "trace.vcd"
        _traced_run("vecadd", 64, f"simx:trace=vcd,trace_file={path}")
        text = path.read_text()
        assert "$enddefinitions" in text
        assert parse_vcd(text)

    def test_channel_filter_restricts_stream(self):
        _, events = _traced_run(
            "vecadd", 64, "simx:trace=mem,trace_channels=scheduler+dcache"
        )
        assert {e.channel for e in events} <= {"scheduler", "dcache"}
        assert {e.channel for e in events} == {"scheduler", "dcache"}

    def test_file_mode_requires_trace_file(self):
        with pytest.raises(ValueError, match="trace_file"):
            VortexDevice(_config(), driver="simx:trace=vcd")

    def test_mem_mode_rejects_trace_file(self):
        with pytest.raises(ValueError, match="drop trace_file"):
            VortexDevice(_config(), driver="simx:trace=mem,trace_file=x.csv")

    def test_trace_file_requires_a_mode(self):
        with pytest.raises(ValueError, match="require a trace= mode"):
            VortexDevice(_config(), driver="simx:trace_file=x.csv")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown trace mode"):
            VortexDevice(_config(), driver="simx:trace=waveform")

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown trace channel"):
            VortexDevice(_config(), driver="simx:trace=mem,trace_channels=sched")

    def test_tracing_off_attaches_nothing(self):
        device = VortexDevice(_config(), driver="simx")
        assert device.driver.trace_bus is None
        assert device.driver.trace_sink is None
        for core in device.driver.processor.cores:
            assert core.trace is None


# ---------------------------------------------------------------------------
# Determinism matrix + reconciliation

MATRIX_KERNELS = [("vecadd", 64), ("sgemm", 8 * 8), ("bfs", 32)]


class TestDeterminismMatrix:
    @pytest.mark.parametrize("kernel,size", MATRIX_KERNELS)
    def test_streams_identical_across_engines_and_fastforward(self, kernel, size):
        streams = {}
        for engine in ("vector", "scalar"):
            for ff in ("on", "off"):
                spec = f"simx:trace=mem,engine={engine},fastforward={ff}"
                driver, events = _traced_run(kernel, size, spec)
                # Full unfiltered trace reconciles against the live counters.
                assert reconcile(events, driver.processor) == []
                streams[(engine, ff)] = expand_skips(events)
        baseline = streams[("vector", "on")]
        assert baseline
        for key, stream in streams.items():
            assert stream == baseline, f"stream for {key} diverged"

    def test_fastforward_emits_skip_markers_that_expand_away(self):
        _, ticked = _traced_run("saxpy", 64, "simx:trace=mem,fastforward=off")
        _, jumped = _traced_run("saxpy", 64, "simx:trace=mem,fastforward=on")
        skips = [e for e in jumped if e.channel == "core" and e.kind == "skip"]
        assert skips, "memory-bound run should fast-forward at least one window"
        assert all(e.payload["cycles"] > 0 for e in skips)
        assert not [e for e in ticked if e.kind == "skip"]
        assert expand_skips(jumped) == expand_skips(ticked)

    def test_scheduler_channel_partitions_cycles(self):
        driver, events = _traced_run("sgemm", 8 * 8, "simx:trace=mem")
        per_core = attribute_stalls(expand_skips(events))
        for core in driver.processor.cores:
            breakdown = per_core[core.core_id]
            assert breakdown["cycles"] == core.perf.get("cycles")
            parts = (
                breakdown["issues"]
                + breakdown["idle"]
                + breakdown["masked"]
                + sum(breakdown["stalls"].values())
            )
            assert parts == breakdown["cycles"]


def _local_barrier_program():
    """Spawn every wavefront, rendezvous all of them at core-local barrier 0."""
    asm = ProgramBuilder(base=0x8000_0000)
    asm.csr_read(Reg.t0, CSR.NUM_WARPS)
    asm.la(Reg.t1, "worker")
    asm.wspawn(Reg.t0, Reg.t1)
    asm.j("worker")
    asm.label("worker")
    asm.li(Reg.t5, 0)
    asm.csr_read(Reg.t6, CSR.NUM_WARPS)
    asm.bar(Reg.t5, Reg.t6)
    asm.li(Reg.t6, 0)
    asm.tmc(Reg.t6)
    return asm.assemble()


class TestBarrierTracing:
    def test_barrier_workload_traces_and_reconciles(self):
        sink = MemorySink()
        config = VortexConfig(memory=MemoryConfig(latency=20, bandwidth=1))
        processor = TimingProcessor(config, trace=TraceBus([sink]))
        program = _local_barrier_program()
        processor.memory.load_words(program.base, program.words)
        processor.run(program.entry)
        arrivals = [e for e in sink.events if e.channel == "barrier"]
        num_warps = config.core.num_warps
        assert len(arrivals) == num_warps
        assert {e.kind for e in arrivals} == {"arrive"}
        assert all(e.payload["expected"] == num_warps for e in arrivals)
        # The last arrival releases every waiter; earlier ones stall.
        released = [e for e in arrivals if e.payload["released"]]
        assert len(released) == 1
        assert released[0].payload["released"] == num_warps
        assert reconcile(list(sink.events), processor) == []


# ---------------------------------------------------------------------------
# Sink round-trips (Hypothesis)

_payload_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**32),
    st.booleans(),
    st.text(alphabet="abcdefxyz_", max_size=8),
)

_events = st.lists(
    st.builds(
        TraceEvent,
        cycle=st.integers(min_value=0, max_value=1_000_000),
        core=st.integers(min_value=-1, max_value=7),
        warp=st.integers(min_value=-1, max_value=15),
        channel=st.sampled_from(CHANNELS),
        kind=st.sampled_from(
            ("issue", "stall", "hit", "miss", "fill", "conflict", "response")
        ),
        payload=st.dictionaries(
            st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
            _payload_values,
            max_size=3,
        ),
    ),
    max_size=40,
)


class TestSinkRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(events=_events)
    def test_csv_round_trip_is_lossless(self, events):
        buffer = io.StringIO()
        sink = CsvSink(buffer)
        for event in events:
            sink.write(event)
        sink.close()
        assert parse_csv(buffer.getvalue()) == events

    @settings(max_examples=50, deadline=None)
    @given(events=_events)
    def test_jsonl_round_trip_is_lossless(self, events):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for event in events:
            sink.write(event)
        sink.close()
        assert parse_jsonl(buffer.getvalue()) == events

    @settings(max_examples=50, deadline=None)
    @given(events=_events)
    def test_vcd_round_trip_preserves_change_list(self, events):
        # VCD is a lossy waveform projection; the invariant is that the
        # emitted file re-parses to exactly the change list it encodes.
        ordered = sorted(events, key=lambda e: e.cycle)
        assert parse_vcd(encode_vcd(ordered)) == vcd_changes(ordered)


# ---------------------------------------------------------------------------
# CLI


@pytest.fixture(scope="module")
def traced_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.csv"
    _traced_run("vecadd", 64, f"simx:trace=csv,trace_file={path}")
    return path


class TestTraceCli:
    def test_summarize_reports_channels_and_attribution(self, traced_csv, capsys):
        assert trace_cli.main(["summarize", str(traced_csv)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == len(load_trace(traced_csv))
        assert "scheduler" in payload["channels"]
        assert payload["attribution"]["core0"]["cycles"] > 0
        assert payload == {**payload, **summarize(load_trace(traced_csv))} | {
            "attribution": payload["attribution"]
        }

    def test_convert_csv_jsonl_vcd(self, traced_csv, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert trace_cli.main(["convert", str(traced_csv), str(jsonl), "--format", "jsonl"]) == 0
        assert load_trace(jsonl) == load_trace(traced_csv)
        vcd = tmp_path / "run.vcd"
        assert trace_cli.main(["convert", str(traced_csv), str(vcd), "--format", "vcd"]) == 0
        assert parse_vcd(vcd.read_text()) == vcd_changes(load_trace(traced_csv))

    def test_diff_detects_identity_and_divergence(self, traced_csv, tmp_path, capsys):
        assert trace_cli.main(["diff", str(traced_csv), str(traced_csv)]) == 0
        assert "traces match" in capsys.readouterr().out

        events = load_trace(traced_csv)
        mutated = list(events)
        mutated[0] = TraceEvent(
            cycle=events[0].cycle,
            core=events[0].core,
            warp=events[0].warp,
            channel=events[0].channel,
            kind="tampered",
            payload=events[0].payload,
        )
        other = tmp_path / "mutated.csv"
        sink = CsvSink(other)
        for event in mutated:
            sink.write(event)
        sink.close()
        assert trace_cli.main(["diff", str(traced_csv), str(other)]) == 1
        assert "traces differ" in capsys.readouterr().out

    def test_non_warp_constant_round_trips(self):
        event = TraceEvent(0, -1, NO_WARP, "dram", "response", {"address": 64})
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write(event)
        sink.close()
        assert parse_jsonl(buffer.getvalue()) == [event]
