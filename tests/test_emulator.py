"""Tests for the warp-level instruction emulator and the functional core.

These tests assemble small programs with the builder DSL, load them into
device memory and run them on a :class:`SimtCore`, checking architectural
state afterwards — the same flow the FUNCSIM driver uses.
"""

import pytest

from repro.common.bitutils import bits_to_float, to_int32
from repro.common.config import VortexConfig
from repro.core.core import SimtCore
from repro.core.emulator import EmulationError
from repro.isa.builder import ProgramBuilder
from repro.isa.csr import CSR
from repro.isa.registers import FReg, Reg
from repro.mem.memory import MainMemory

BASE = 0x8000_0000


def make_core(num_warps=4, num_threads=4) -> SimtCore:
    config = VortexConfig().with_warps_threads(num_warps, num_threads)
    return SimtCore(core_id=0, config=config, memory=MainMemory(), processor=None)


def run_program(core: SimtCore, build, max_instructions=100_000):
    """Assemble ``build(asm)`` into memory, reset the core and run it."""
    asm = ProgramBuilder(base=BASE)
    build(asm)
    program = asm.assemble()
    core.memory.load_words(program.base, program.words)
    core.reset(program.entry)
    core.run(max_instructions=max_instructions)
    return program


def halt(asm):
    asm.li(Reg.t6, 0)
    asm.tmc(Reg.t6)


# -- scalar arithmetic ------------------------------------------------------------------------


def test_arithmetic_and_memory_roundtrip():
    core = make_core()

    def build(asm):
        asm.li(Reg.t0, 21)
        asm.slli(Reg.t1, Reg.t0, 1)          # 42
        asm.li(Reg.a0, 0x1000)
        asm.sw(Reg.t1, 0, Reg.a0)
        asm.lw(Reg.t2, 0, Reg.a0)
        asm.addi(Reg.t2, Reg.t2, 8)          # 50
        asm.sw(Reg.t2, 4, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert core.memory.read_word(0x1000) == 42
    assert core.memory.read_word(0x1004) == 50


def test_branch_loop_and_jal():
    core = make_core()

    def build(asm):
        asm.li(Reg.t0, 5)        # counter
        asm.li(Reg.t1, 0)        # sum
        loop = asm.label("loop")
        asm.add(Reg.t1, Reg.t1, Reg.t0)
        asm.addi(Reg.t0, Reg.t0, -1)
        asm.bnez(Reg.t0, loop)
        asm.li(Reg.a0, 0x2000)
        asm.sw(Reg.t1, 0, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert core.memory.read_word(0x2000) == 15


def test_function_call_and_return():
    core = make_core()

    def build(asm):
        asm.li(Reg.a0, 7)
        asm.call("double_it")
        asm.li(Reg.a1, 0x3000)
        asm.sw(Reg.a0, 0, Reg.a1)
        halt(asm)
        asm.label("double_it")
        asm.add(Reg.a0, Reg.a0, Reg.a0)
        asm.ret()

    run_program(core, build)
    assert core.memory.read_word(0x3000) == 14


def test_float_arithmetic_through_memory():
    core = make_core()

    def build(asm):
        asm.li(Reg.a0, 0x4000)
        asm.li_float(FReg.fa0, 1.5)
        asm.li_float(FReg.fa1, 2.25)
        asm.fadd_s(FReg.fa2, FReg.fa0, FReg.fa1)
        asm.fsw(FReg.fa2, 0, Reg.a0)
        asm.fmul_s(FReg.fa3, FReg.fa0, FReg.fa1)
        asm.fsw(FReg.fa3, 4, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert bits_to_float(core.memory.read_word(0x4000)) == pytest.approx(3.75)
    assert bits_to_float(core.memory.read_word(0x4004)) == pytest.approx(3.375)


def test_byte_and_half_loads_sign_extend():
    core = make_core()

    def build(asm):
        asm.li(Reg.a0, 0x5000)
        asm.li(Reg.t0, 0xFFFF8081)
        asm.sw(Reg.t0, 0, Reg.a0)
        asm.lb(Reg.t1, 0, Reg.a0)
        asm.lbu(Reg.t2, 0, Reg.a0)
        asm.lh(Reg.t3, 0, Reg.a0)
        asm.lhu(Reg.t4, 0, Reg.a0)
        asm.sw(Reg.t1, 4, Reg.a0)
        asm.sw(Reg.t2, 8, Reg.a0)
        asm.sw(Reg.t3, 12, Reg.a0)
        asm.sw(Reg.t4, 16, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert to_int32(core.memory.read_word(0x5004)) == -127      # sign-extended 0x81
    assert core.memory.read_word(0x5008) == 0x81
    assert to_int32(core.memory.read_word(0x500C)) == -32639    # 0x8081
    assert core.memory.read_word(0x5010) == 0x8081


# -- CSR and SIMT control -----------------------------------------------------------------------


def test_csr_reads_machine_geometry():
    core = make_core(num_warps=4, num_threads=4)

    def build(asm):
        asm.li(Reg.a0, 0x6000)
        asm.csr_read(Reg.t0, CSR.NUM_THREADS)
        asm.csr_read(Reg.t1, CSR.NUM_WARPS)
        asm.csr_read(Reg.t2, CSR.CORE_ID)
        asm.csr_read(Reg.t3, CSR.THREAD_ID)
        asm.csr_read(Reg.t4, CSR.WARP_ID)
        asm.sw(Reg.t0, 0, Reg.a0)
        asm.sw(Reg.t1, 4, Reg.a0)
        asm.sw(Reg.t2, 8, Reg.a0)
        asm.sw(Reg.t3, 12, Reg.a0)
        asm.sw(Reg.t4, 16, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert core.memory.read_word(0x6000) == 4
    assert core.memory.read_word(0x6004) == 4
    assert core.memory.read_word(0x6008) == 0
    assert core.memory.read_word(0x600C) == 0  # thread 0 did the store that survived
    assert core.memory.read_word(0x6010) == 0


def test_tmc_activates_threads_with_per_thread_ids():
    core = make_core(num_warps=1, num_threads=4)

    def build(asm):
        asm.csr_read(Reg.t0, CSR.NUM_THREADS)
        asm.tmc(Reg.t0)
        # Each thread stores its id to 0x7000 + 4*tid.
        asm.csr_read(Reg.t1, CSR.THREAD_ID)
        asm.slli(Reg.t2, Reg.t1, 2)
        asm.li(Reg.a0, 0x7000)
        asm.add(Reg.a0, Reg.a0, Reg.t2)
        asm.sw(Reg.t1, 0, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert core.memory.read_words(0x7000, 4) == [0, 1, 2, 3]


def test_wspawn_launches_other_warps():
    core = make_core(num_warps=4, num_threads=1)

    def build(asm):
        asm.csr_read(Reg.t0, CSR.NUM_WARPS)
        asm.la(Reg.t1, "worker")
        asm.wspawn(Reg.t0, Reg.t1)
        asm.j("worker")
        asm.label("worker")
        asm.csr_read(Reg.t2, CSR.WARP_ID)
        asm.slli(Reg.t3, Reg.t2, 2)
        asm.li(Reg.a0, 0x8000)
        asm.add(Reg.a0, Reg.a0, Reg.t3)
        asm.addi(Reg.t4, Reg.t2, 100)
        asm.sw(Reg.t4, 0, Reg.a0)
        halt(asm)

    run_program(core, build)
    assert core.memory.read_words(0x8000, 4) == [100, 101, 102, 103]
    assert core.perf.get("wspawns") == 1


def test_split_join_divergence_both_paths_execute():
    core = make_core(num_warps=1, num_threads=4)

    def build(asm):
        asm.csr_read(Reg.t0, CSR.NUM_THREADS)
        asm.tmc(Reg.t0)
        asm.csr_read(Reg.t1, CSR.THREAD_ID)
        # Predicate: thread id is even.
        asm.andi(Reg.t2, Reg.t1, 1)
        asm.seqz(Reg.t2, Reg.t2)
        asm.li(Reg.a0, 0x9000)
        asm.slli(Reg.t3, Reg.t1, 2)
        asm.add(Reg.a0, Reg.a0, Reg.t3)
        asm.split(Reg.t2)
        asm.beqz(Reg.t2, "else_path")
        asm.li(Reg.t4, 1111)
        asm.sw(Reg.t4, 0, Reg.a0)
        asm.join()
        asm.j("endif")
        asm.label("else_path")
        asm.li(Reg.t4, 2222)
        asm.sw(Reg.t4, 0, Reg.a0)
        asm.join()
        asm.label("endif")
        halt(asm)

    run_program(core, build)
    assert core.memory.read_words(0x9000, 4) == [1111, 2222, 1111, 2222]
    assert core.perf.get("divergent_splits") == 1


def test_uniform_split_skips_untaken_side():
    core = make_core(num_warps=1, num_threads=4)

    def build(asm):
        asm.csr_read(Reg.t0, CSR.NUM_THREADS)
        asm.tmc(Reg.t0)
        asm.li(Reg.t2, 1)  # uniformly true predicate
        asm.li(Reg.a0, 0xA000)
        asm.split(Reg.t2)
        asm.beqz(Reg.t2, "else_path")
        asm.li(Reg.t4, 7)
        asm.sw(Reg.t4, 0, Reg.a0)
        asm.join()
        asm.j("endif")
        asm.label("else_path")
        asm.li(Reg.t4, 9)
        asm.sw(Reg.t4, 0, Reg.a0)
        asm.join()
        asm.label("endif")
        halt(asm)

    run_program(core, build)
    assert core.memory.read_word(0xA000) == 7
    assert core.perf.get("uniform_splits") == 1


def test_barrier_synchronizes_warps():
    core = make_core(num_warps=4, num_threads=1)

    def build(asm):
        asm.csr_read(Reg.t0, CSR.NUM_WARPS)
        asm.la(Reg.t1, "worker")
        asm.wspawn(Reg.t0, Reg.t1)
        asm.j("worker")
        asm.label("worker")
        # Every warp increments a counter *before* the barrier...
        asm.li(Reg.a0, 0xB000)
        asm.csr_read(Reg.t2, CSR.WARP_ID)
        asm.slli(Reg.t3, Reg.t2, 2)
        asm.add(Reg.a1, Reg.a0, Reg.t3)
        asm.li(Reg.t4, 1)
        asm.sw(Reg.t4, 0, Reg.a1)
        # ... waits for all 4 warps ...
        asm.li(Reg.t5, 0)
        asm.csr_read(Reg.t6, CSR.NUM_WARPS)
        asm.bar(Reg.t5, Reg.t6)
        # ... then warp 0 sums the per-warp flags written before the barrier.
        asm.bnez(Reg.t2, "done")
        asm.lw(Reg.t3, 0, Reg.a0)
        asm.lw(Reg.t4, 4, Reg.a0)
        asm.add(Reg.t3, Reg.t3, Reg.t4)
        asm.lw(Reg.t4, 8, Reg.a0)
        asm.add(Reg.t3, Reg.t3, Reg.t4)
        asm.lw(Reg.t4, 12, Reg.a0)
        asm.add(Reg.t3, Reg.t3, Reg.t4)
        asm.sw(Reg.t3, 16, Reg.a0)
        asm.label("done")
        halt(asm)

    run_program(core, build)
    assert core.memory.read_word(0xB010) == 4
    assert core.perf.get("barrier_stalls") >= 1


def test_ecall_halts_the_warp():
    core = make_core(num_warps=1, num_threads=1)

    def build(asm):
        asm.li(Reg.t0, 3)
        asm.ecall()

    run_program(core, build)
    assert core.done


def test_runaway_kernel_hits_instruction_limit():
    core = make_core(num_warps=1, num_threads=1)

    def build(asm):
        loop = asm.label("forever")
        asm.j(loop)

    with pytest.raises(EmulationError):
        run_program(core, build, max_instructions=1000)


def test_divergent_branch_without_split_is_counted():
    core = make_core(num_warps=1, num_threads=4)

    def build(asm):
        asm.csr_read(Reg.t0, CSR.NUM_THREADS)
        asm.tmc(Reg.t0)
        asm.csr_read(Reg.t1, CSR.THREAD_ID)
        # Branch condition differs across threads and no split protects it.
        asm.beqz(Reg.t1, "skip")
        asm.nop()
        asm.label("skip")
        halt(asm)

    run_program(core, build)
    assert core.perf.get("divergent_branches") >= 1
