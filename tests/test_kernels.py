"""Tests for the benchmark kernels: correctness on both drivers and the
SIMT behaviours the device-side runtime relies on."""

import numpy as np
import pytest

from repro.common.config import VortexConfig
from repro.kernels import (
    COMPUTE_BOUND,
    KERNELS,
    MEMORY_BOUND,
    BfsKernel,
    GaussianKernel,
    SgemmKernel,
    VecAddKernel,
)
from repro.kernels.bfs import bfs_reference, build_ellpack
from repro.kernels.texture import hardware_texture_kernel, software_texture_kernel
from repro.runtime.device import VortexDevice


def _device(driver="funcsim", **overrides):
    return VortexDevice(VortexConfig(**overrides) if overrides else VortexConfig(), driver=driver)


# -- registry -----------------------------------------------------------------------------------


def test_registry_covers_paper_benchmarks():
    assert set(COMPUTE_BOUND) | set(MEMORY_BOUND) == set(KERNELS)
    assert set(COMPUTE_BOUND) == {"sgemm", "vecadd", "sfilter"}
    assert set(MEMORY_BOUND) == {"saxpy", "nearn", "gaussian", "bfs"}


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_verifies_on_functional_driver(name):
    device = _device("funcsim")
    run = KERNELS[name]().run(device)
    assert run.passed, f"{name} produced wrong results"
    assert run.report.instructions > 0


@pytest.mark.parametrize("name", ["vecadd", "saxpy", "bfs"])
def test_kernel_verifies_on_cycle_driver(name):
    device = _device("simx")
    run = KERNELS[name]().run(device, size=64 if name != "bfs" else 32)
    assert run.passed
    assert run.report.cycles > 0
    assert run.report.ipc > 0


def test_kernels_scale_problem_size():
    for size in (16, 64):
        device = _device("funcsim")
        run = VecAddKernel().run(device, size=size)
        assert run.passed
        assert run.context["size"] == size


def test_kernel_with_non_multiple_task_count():
    # 50 tasks over 16 hardware threads exercises the split/join boundary
    # handling in the device-side runtime.
    device = _device("funcsim")
    run = VecAddKernel().run(device, size=50)
    assert run.passed


def test_kernel_uses_all_cores():
    device = _device("funcsim", num_cores=2)
    run = VecAddKernel().run(device, size=64)
    assert run.passed
    counters = run.report.counters
    assert counters["core0"]["instructions"] > 0
    assert counters["core1"]["instructions"] > 0


def test_sgemm_various_matrix_sizes():
    for n in (4, 8):
        device = _device("funcsim")
        run = SgemmKernel().run(device, size=n * n)
        assert run.passed and run.context["n"] == n


def test_gaussian_with_nonzero_pivot():
    device = _device("funcsim")
    run = GaussianKernel(pivot=3).run(device, size=12)
    assert run.passed


# -- BFS host helpers -----------------------------------------------------------------------------


def test_build_ellpack_padding_and_symmetry():
    table = build_ellpack(4, [(0, 1), (1, 2), (2, 3)], max_degree=3)
    assert table.shape == (4, 3)
    assert 1 in table[0]
    assert 0 in table[1] and 2 in table[1]
    assert (table[0] == -1).sum() == 2


def test_bfs_reference_levels():
    table = build_ellpack(5, [(0, 1), (1, 2), (2, 3), (3, 4)], max_degree=2)
    levels = bfs_reference(table, source=0)
    assert list(levels) == [0, 1, 2, 3, 4]


def test_bfs_multiple_level_expansions_reach_reference():
    device = _device("funcsim")
    kernel = BfsKernel(max_degree=4)
    size = 64
    run = kernel.run(device, size=size)
    assert run.passed


# -- texture kernels --------------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["point", "bilinear", "trilinear"])
def test_texture_kernels_hw_and_sw_agree(mode):
    results = {}
    for use_hw in (True, False):
        device = _device("funcsim")
        kernel = hardware_texture_kernel(mode) if use_hw else software_texture_kernel(mode)
        run = kernel.run(device, size=8 * 8)
        assert run.passed, f"{kernel.name} produced wrong pixels"
        results[use_hw] = run.context["dst"].read(np.uint32, 64)
    hw_bytes = results[True].view(np.uint8).astype(np.int32)
    sw_bytes = results[False].view(np.uint8).astype(np.int32)
    assert np.max(np.abs(hw_bytes - sw_bytes)) <= 2


def test_hardware_texturing_executes_fewer_instructions():
    hw_device = _device("funcsim")
    sw_device = _device("funcsim")
    hw = hardware_texture_kernel("bilinear").run(hw_device, size=8 * 8)
    sw = software_texture_kernel("bilinear").run(sw_device, size=8 * 8)
    assert hw.report.instructions < sw.report.instructions


def test_texture_kernel_rejects_bad_mode():
    with pytest.raises(ValueError):
        hardware_texture_kernel("anisotropic")
