"""Tests for the two-pass text assembler and the disassembler."""

import pytest

from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.decoder import decode
from repro.isa.disassembler import disassemble, disassemble_program


def test_assemble_simple_program():
    program = Assembler(base=0).assemble(
        """
        # counts down from 10
        li t0, 10
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ret
        """
    )
    mnemonics = [decode(word).mnemonic for word in program.words]
    assert mnemonics == ["addi", "addi", "bne", "jalr"]
    assert program.symbols["loop"] == 4


def test_memory_operands_and_directives():
    program = Assembler(base=0x100).assemble(
        """
        .entry start
        start:
            lw   t1, 8(sp)
            sw   t1, -4(a0)
            flw  fa0, 0(t2)
            fsw  fa0, 12(t2)
        data:
            .word 1, 2, 3
            .float 1.5
            .space 2
        """
    )
    assert program.entry == 0x100
    assert decode(program.words[0]).imm == 8
    assert decode(program.words[1]).imm == -4
    assert program.symbols["data"] == 0x100 + 4 * 4
    assert len(program.words) == 4 + 3 + 1 + 2


def test_vortex_extension_assembly():
    program = Assembler(base=0).assemble(
        """
        tmc t0
        wspawn t0, t1
        split t2
        join
        bar t3, t4
        tex a0, fa0, fa1, fa2
        """
    )
    mnemonics = [decode(word).mnemonic for word in program.words]
    assert mnemonics == ["tmc", "wspawn", "split", "join", "bar", "tex"]


def test_csr_instructions():
    program = Assembler(base=0).assemble("csrrs t0, 0xCC0, zero\ncsrrwi zero, 0x7C0, 5")
    first = decode(program.words[0])
    assert first.csr == 0xCC0
    second = decode(program.words[1])
    assert second.csr == 0x7C0
    assert second.imm == 5


def test_error_reports_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        Assembler().assemble("nop\nbogus t0, t1\n")
    assert excinfo.value.line_number == 2


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        Assembler().assemble("add t0, t1")


def test_unknown_directive_rejected():
    with pytest.raises(AssemblerError):
        Assembler().assemble(".section .text")


# -- disassembler -------------------------------------------------------------------


def test_disassemble_matches_source():
    program = Assembler(base=0).assemble("add t0, t1, t2")
    assert disassemble(program.words[0]) == "add t0, t1, t2"


def test_disassemble_memory_and_float():
    program = Assembler(base=0).assemble("lw a0, 16(sp)\nfadd.s fa0, fa1, fa2")
    assert disassemble(program.words[0]) == "lw a0, 16(sp)"
    assert disassemble(program.words[1]) == "fadd.s fa0, fa1, fa2"


def test_disassemble_branch_with_pc():
    program = Assembler(base=0x1000).assemble("loop:\n  beq t0, t1, loop")
    text = disassemble(program.words[0], pc=0x1000)
    assert "0x1000" in text


def test_disassemble_program_handles_data_words():
    lines = disassemble_program([0x00000013, 0xFFFFFFFF], base=0)
    assert len(lines) == 2
    assert "addi" in lines[0]
    assert ".word" in lines[1]


def test_assembler_roundtrip_through_disassembler():
    source = ["add t0, t1, t2", "xori a0, a1, -1", "lui t3, 73728", "jalr zero, ra, 0"]
    program = Assembler(base=0).assemble("\n".join(source))
    for original, word in zip(source, program.words):
        reassembled = Assembler(base=0).assemble(disassemble(word))
        assert reassembled.words[0] == word, original
