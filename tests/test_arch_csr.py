"""Tests for the CSR file and the texture CSR address map."""

import pytest

from repro.arch.csr import CsrFile
from repro.isa.csr import CSR, NUM_TEX_LODS, TexCSR, is_tex_csr, split_tex_csr, tex_csr


@pytest.fixture
def csr() -> CsrFile:
    return CsrFile(core_id=2, num_warps=4, num_threads=8, num_cores=16)


def test_identification_csrs_are_contextual(csr):
    assert csr.read(CSR.THREAD_ID, thread_id=5, warp_id=1) == 5
    assert csr.read(CSR.WARP_ID, thread_id=5, warp_id=1) == 1
    assert csr.read(CSR.CORE_ID) == 2
    assert csr.read(CSR.NUM_THREADS) == 8
    assert csr.read(CSR.NUM_WARPS) == 4
    assert csr.read(CSR.NUM_CORES) == 16


def test_thread_and_warp_masks_visible(csr):
    assert csr.read(CSR.THREAD_MASK, thread_mask=0b1010) == 0b1010
    assert csr.read(CSR.WARP_MASK, warp_mask=0b0110) == 0b0110


def test_identification_csrs_read_only(csr):
    csr.write(CSR.CORE_ID, 99)
    assert csr.read(CSR.CORE_ID) == 2


def test_cycle_and_instret_counters(csr):
    csr.tick(10)
    csr.retire(3)
    assert csr.read(CSR.CYCLE) == 10
    assert csr.read(CSR.INSTRET) == 3


def test_general_storage_roundtrip(csr):
    csr.write(0x7C0, 0x1234)
    assert csr.read(0x7C0) == 0x1234
    assert csr.raw(0x7C0) == 0x1234
    assert csr.raw(0x7C1, default=7) == 7
    assert 0x7C0 in csr.snapshot()["storage"]


# -- texture CSR map --------------------------------------------------------------------


def test_tex_csr_addresses_unique_per_stage_and_field():
    addresses = set()
    for stage in range(2):
        for field in (TexCSR.ADDR, TexCSR.WIDTH, TexCSR.HEIGHT, TexCSR.FORMAT, TexCSR.WRAP, TexCSR.FILTER):
            addresses.add(tex_csr(stage, field))
        for lod in range(NUM_TEX_LODS):
            addresses.add(tex_csr(stage, TexCSR.MIPOFF, lod))
    assert len(addresses) == 2 * (6 + NUM_TEX_LODS)


def test_tex_csr_split_roundtrip():
    address = tex_csr(1, TexCSR.MIPOFF, 3)
    assert is_tex_csr(address)
    assert split_tex_csr(address) == (1, TexCSR.MIPOFF, 3)
    address = tex_csr(0, TexCSR.WRAP)
    assert split_tex_csr(address) == (0, TexCSR.WRAP, 0)


def test_tex_csr_validation():
    with pytest.raises(ValueError):
        tex_csr(5, TexCSR.ADDR)
    with pytest.raises(ValueError):
        tex_csr(0, TexCSR.MIPOFF, 99)
    with pytest.raises(ValueError):
        tex_csr(0, TexCSR.WIDTH, lod=1)
    with pytest.raises(ValueError):
        split_tex_csr(0x100)
