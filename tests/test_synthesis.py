"""Tests for the calibrated synthesis area/frequency model and the ASIC summary."""

import pytest

from repro.synthesis.area_model import (
    ARRIA10,
    STRATIX10,
    CacheSynthesisModel,
    CoreSynthesisModel,
    MulticoreSynthesisModel,
    TABLE3_POINTS,
    TABLE4_POINTS,
    TABLE5_POINTS,
)
from repro.synthesis.asic import PUBLISHED_CONFIG, asic_power_breakdown, estimate_asic
from repro.synthesis.components import COMPONENT_FRACTIONS, area_breakdown, dominant_components


# -- Table 3: per-core model ---------------------------------------------------------------


def test_core_model_reproduces_table3_within_tolerance():
    model = CoreSynthesisModel()
    for label, (warps, threads, lut, regs, bram, fmax) in TABLE3_POINTS.items():
        estimate = model.estimate(warps, threads)
        assert estimate["lut"] == pytest.approx(lut, rel=0.05), label
        assert estimate["regs"] == pytest.approx(regs, rel=0.05), label
        assert estimate["bram"] == pytest.approx(bram, rel=0.05), label
        assert estimate["fmax"] == pytest.approx(fmax, rel=0.02), label


def test_core_model_orders_thread_scaling_above_warp_scaling():
    model = CoreSynthesisModel()
    # Doubling threads is more expensive than doubling warps (section 6.2.1).
    base = model.estimate(4, 4)["lut"]
    more_threads = model.estimate(4, 8)["lut"]
    more_warps = model.estimate(8, 4)["lut"]
    assert more_threads > more_warps > base


def test_core_model_rejects_invalid_configs():
    with pytest.raises(ValueError):
        CoreSynthesisModel().estimate(0, 4)


def test_core_model_published_accessor():
    row = CoreSynthesisModel.published("4W-4T")
    assert row["lut"] == 21502 and row["warps"] == 4


# -- Table 5: cache model --------------------------------------------------------------------


def test_cache_model_reproduces_table5():
    model = CacheSynthesisModel()
    for ports, (lut, regs, bram, fmax) in TABLE5_POINTS.items():
        estimate = model.estimate(ports)
        assert estimate["lut"] == pytest.approx(lut, rel=0.03)
        assert estimate["regs"] == pytest.approx(regs, rel=0.03)
        assert estimate["bram"] == bram
        assert estimate["fmax"] == pytest.approx(fmax, rel=0.02)


def test_cache_model_port_cost_is_monotonic():
    model = CacheSynthesisModel()
    luts = [model.estimate(ports)["lut"] for ports in (1, 2, 4)]
    fmaxes = [model.estimate(ports)["fmax"] for ports in (1, 2, 4)]
    assert luts == sorted(luts)
    assert fmaxes == sorted(fmaxes, reverse=True)


def test_cache_model_scales_with_banks():
    model = CacheSynthesisModel()
    assert model.estimate(2, num_banks=8)["lut"] == pytest.approx(
        2 * model.estimate(2, num_banks=4)["lut"]
    )


# -- Table 4: multi-core model ------------------------------------------------------------------


def test_multicore_model_reproduces_table4_a10_rows():
    model = MulticoreSynthesisModel(ARRIA10)
    for cores, row in TABLE4_POINTS.items():
        if row[5] != "A10":
            continue
        estimate = model.estimate(cores, ARRIA10)
        assert estimate["alm_pct"] == pytest.approx(row[0], abs=6.0), cores
        assert estimate["regs"] == pytest.approx(row[1], rel=0.12), cores
        assert estimate["fmax"] == pytest.approx(row[4], rel=0.04), cores


def test_paper_capacity_claims_hold():
    model = MulticoreSynthesisModel()
    # 16 cores fit on the Arria 10, 32 do not; 32 fit on the Stratix 10.
    assert model.fits(16, ARRIA10)
    assert not model.fits(32, ARRIA10)
    assert model.fits(32, STRATIX10)
    assert model.max_cores(ARRIA10) == 16
    assert model.max_cores(STRATIX10) >= 32


def test_multicore_fmax_degrades_with_core_count():
    model = MulticoreSynthesisModel()
    fmaxes = [model.estimate(cores)["fmax"] for cores in (1, 4, 16)]
    assert fmaxes == sorted(fmaxes, reverse=True)
    # The paper reports ~200 MHz at 32 cores.
    assert model.estimate(32, STRATIX10)["fmax"] == pytest.approx(200, abs=10)


def test_table4_regeneration_has_all_rows():
    table = MulticoreSynthesisModel().table4()
    assert set(table) == set(TABLE4_POINTS)
    assert table[32]["device"] == "Stratix 10"


# -- Figure 15: area distribution -------------------------------------------------------------------


def test_component_fractions_are_normalized():
    assert sum(COMPONENT_FRACTIONS.values()) == pytest.approx(1.0)


def test_caches_and_texture_dominate_area():
    assert set(dominant_components(num_cores=8, top=2)) == {"caches", "texture_units"}
    breakdown = area_breakdown(num_cores=8)
    assert breakdown["fpu"] < breakdown["caches"]


# -- Figures 16/17: ASIC summary -----------------------------------------------------------------------


def test_asic_estimate_matches_published_point():
    summary = estimate_asic(
        PUBLISHED_CONFIG["warps"], PUBLISHED_CONFIG["threads"], PUBLISHED_CONFIG["frequency_mhz"]
    )
    assert summary.power_mw == pytest.approx(PUBLISHED_CONFIG["power_mw"], rel=1e-6)


def test_asic_power_scales_with_frequency_and_size():
    base = estimate_asic(8, 4, 300.0).power_mw
    assert estimate_asic(8, 4, 150.0).power_mw == pytest.approx(base / 2)
    assert estimate_asic(8, 8, 300.0).power_mw > base


def test_asic_power_breakdown_sums_to_total():
    breakdown = asic_power_breakdown(8, 4)
    assert sum(breakdown.values()) == pytest.approx(46.8, rel=0.01)
    assert breakdown["register_file"] == max(breakdown.values())
