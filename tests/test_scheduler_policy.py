"""The wavefront-scheduler policy axis (`CoreConfig.scheduler_policy`).

Three invariants:

* ``"round-robin"`` (the default) is **counter-identical to the pre-axis
  baseline** — the cycle counts below were recorded on the repository state
  before the policy knob existed, so any drift in the default schedule
  fails these tests;
* the alternative policies are *distinct* from round-robin on stall-heavy
  workloads (otherwise the axis sweeps nothing);
* every policy is *deterministic* — the same job twice yields bit-identical
  reports, on both execution engines.
"""

from __future__ import annotations

import pytest

from repro.common.config import SCHEDULER_POLICIES, CacheConfig, CoreConfig, MemoryConfig, VortexConfig
from repro.core.scheduler import WavefrontScheduler
from repro.engine.session import KernelJob, Session, diff_execution_reports
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice

#: Cycle counts recorded before the scheduler-policy axis existed (the
#: hierarchical two-level round-robin schedule).  Key: (kernel, size, ports).
PRE_AXIS_BASELINE_CYCLES = {
    ("sgemm", 64, 1): 3166,
    ("sfilter", 64, 2): 6175,
    ("vecadd", 128, 1): 2665,
    ("bfs", 64, 1): 1632,
}


def _config(ports: int = 1, policy: str = "round-robin") -> VortexConfig:
    return VortexConfig(
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=ports),
        memory=MemoryConfig(latency=100, bandwidth=1),
    ).with_scheduler_policy(policy)


def _run(kernel: str, size: int, config: VortexConfig):
    device = VortexDevice(config, driver="simx")
    run = KERNELS[kernel]().run(device, size=size)
    assert run.passed
    return run.report


# -- config plumbing ----------------------------------------------------------------------


def test_core_config_rejects_unknown_policy():
    with pytest.raises(ValueError, match=r"unknown scheduler policy 'fifo'"):
        CoreConfig(scheduler_policy="fifo")
    with pytest.raises(ValueError, match="unknown scheduler policy"):
        VortexConfig().with_scheduler_policy("fifo")


def test_scheduler_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown scheduler policy"):
        WavefrontScheduler(4, policy="fifo")


def test_policy_reaches_the_timing_core():
    for policy in SCHEDULER_POLICIES:
        device = VortexDevice(_config(policy=policy), driver="simx")
        assert device.driver.processor.cores[0].scheduler.policy == policy


# -- round-robin is the pre-axis schedule -------------------------------------------------


@pytest.mark.parametrize("kernel,size,ports", sorted(PRE_AXIS_BASELINE_CYCLES))
def test_round_robin_matches_pre_axis_baseline(kernel, size, ports):
    report = _run(kernel, size, _config(ports=ports))
    assert report.cycles == PRE_AXIS_BASELINE_CYCLES[(kernel, size, ports)]


def test_explicit_round_robin_equals_default():
    default = _run("sgemm", 64, _config())
    explicit = _run("sgemm", 64, _config(policy="round-robin"))
    assert diff_execution_reports(default, explicit) == []


# -- the alternatives are distinct but deterministic --------------------------------------


@pytest.mark.parametrize(
    "policy", ["greedy-then-oldest", "loose-round-robin", "cache-locality"]
)
def test_alternative_policies_are_deterministic(policy):
    first = _run("sgemm", 64, _config(policy=policy))
    second = _run("sgemm", 64, _config(policy=policy))
    assert diff_execution_reports(first, second) == []


def test_policies_produce_distinct_schedules():
    cycles = {
        policy: _run("sgemm", 64, _config(policy=policy)).cycles
        for policy in SCHEDULER_POLICIES
    }
    assert len(set(cycles.values())) == len(cycles), cycles


@pytest.mark.parametrize(
    "policy", ["greedy-then-oldest", "loose-round-robin", "cache-locality"]
)
def test_alternative_policies_identical_across_engines(policy):
    """The policy axis composes with the engine axis: scalar and vector
    timing engines agree bit-for-bit under every policy."""
    report = Session(executor="serial").run_differential(
        [KernelJob(kernel="sfilter", size=64, config=_config(ports=2, policy=policy))]
    )
    assert report.identical_counters, report.mismatching[0].mismatches


# -- scheduler-unit behaviour -------------------------------------------------------------


def test_greedy_then_oldest_sticks_with_ready_warp():
    scheduler = WavefrontScheduler(4, policy="greedy-then-oldest")
    scheduler.set_masks(0b1111, 0, 0)
    assert scheduler.select() == 0  # cold start: lowest id is oldest
    assert scheduler.select() == 0  # greedy: stays while ready
    scheduler.set_stalled(0, True)
    assert scheduler.select() == 1  # oldest ready warp
    scheduler.set_stalled(0, False)
    assert scheduler.select() == 1  # still greedy on warp 1
    scheduler.set_stalled(1, True)
    # Warps 2 and 3 never issued (stamp 0); warp 0 issued at stamp 1.
    assert scheduler.select() == 2
    # Three non-greedy picks: the cold start and the two stall-forced moves.
    assert scheduler.perf.get("switches") == 3


def test_cache_locality_prefers_affine_warps_and_avoids_hazards():
    scheduler = WavefrontScheduler(4, policy="cache-locality")
    scheduler.set_masks(0b1111, 0, 0)
    assert scheduler.select() == 0  # cold start: no line history, lowest id
    # Warps 0 and 2 last touched line 7, which is also the current line.
    scheduler.note_memory_issue(0, 7)
    scheduler.note_memory_issue(2, 7)
    assert scheduler.select() == 2  # affine pool {0, 2}: 2 is least recent
    scheduler.note_hazard(0)
    scheduler.note_hazard(2)
    assert scheduler.select() == 1  # hazard hints exclude 0 and 2
    scheduler.note_issued(0)
    assert scheduler.select() == 0  # hazard cleared: line affinity wins again
    assert scheduler.perf.get("switches") == 4


def test_cache_locality_falls_back_when_all_ready_warps_have_hazards():
    scheduler = WavefrontScheduler(2, policy="cache-locality")
    scheduler.set_masks(0b11, 0, 0)
    scheduler.note_hazard(0)
    scheduler.note_hazard(1)
    # Skipping every ready warp would deadlock; the pool falls back to ready.
    assert scheduler.select() == 0


def test_loose_round_robin_skips_unready_warps():
    scheduler = WavefrontScheduler(4, policy="loose-round-robin")
    scheduler.set_masks(0b1111, 0b0010, 0)
    assert scheduler.select() == 0
    assert scheduler.select() == 2  # warp 1 stalled: skipped, not waited for
    assert scheduler.select() == 3
    assert scheduler.select() == 0
    scheduler.set_masks(0, 0, 0)
    assert scheduler.select() is None
    assert scheduler.perf.get("idle_cycles") == 1
