"""Tests for the assembler DSL (ProgramBuilder)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.builder import BuildError, ProgramBuilder
from repro.isa.decoder import decode
from repro.isa.registers import FReg, Reg
from repro.arch.alu import alu_op
from repro.common.bitutils import to_uint32


def _run_li(value: int) -> int:
    """Assemble ``li t0, value`` and evaluate the emitted instructions."""
    asm = ProgramBuilder(base=0)
    asm.li(Reg.t0, value)
    program = asm.assemble()
    result = 0
    for word in program.words:
        instr = decode(word)
        if instr.mnemonic == "lui":
            result = to_uint32(instr.imm)
        elif instr.mnemonic == "addi":
            base = result if instr.rs1 == int(Reg.t0) else 0
            result = alu_op("addi", base, to_uint32(instr.imm))
        else:  # pragma: no cover
            raise AssertionError(f"unexpected instruction {instr.mnemonic}")
    return result


@given(st.integers(min_value=-(2**31), max_value=2**32 - 1))
def test_li_materializes_any_32bit_constant(value):
    assert _run_li(value) == to_uint32(value)


def test_li_small_constant_is_single_instruction():
    asm = ProgramBuilder(base=0)
    asm.li(Reg.a0, 42)
    assert len(asm.assemble().words) == 1


def test_labels_and_branches_resolve():
    asm = ProgramBuilder(base=0x1000)
    loop = asm.label("loop")
    asm.addi(Reg.t0, Reg.t0, -1)
    asm.bnez(Reg.t0, loop)
    program = asm.assemble()
    branch = decode(program.words[1])
    # The branch sits 4 bytes after the loop label, so the offset is -4.
    assert branch.imm == -4
    assert program.symbols["loop"] == 0x1000


def test_forward_reference_to_label():
    asm = ProgramBuilder(base=0)
    done = asm.new_label("done")
    asm.beqz(Reg.a0, done)
    asm.nop()
    asm.label(done)
    program = asm.assemble()
    assert decode(program.words[0]).imm == 8


def test_la_points_at_data():
    asm = ProgramBuilder(base=0x8000_0000)
    asm.la(Reg.a0, "table")
    asm.ret()
    asm.label("table")
    asm.word(0xDEADBEEF)
    program = asm.assemble()
    assert program.address_of("table") == program.base + 3 * 4
    assert program.words[-1] == 0xDEADBEEF


def test_duplicate_label_rejected():
    asm = ProgramBuilder()
    asm.label("x")
    with pytest.raises(BuildError):
        asm.label("x")


def test_undefined_label_rejected():
    asm = ProgramBuilder()
    asm.j("nowhere")
    with pytest.raises(BuildError):
        asm.assemble()


def test_unknown_mnemonic_and_bad_operands():
    asm = ProgramBuilder()
    with pytest.raises(BuildError):
        asm.emit("vle32.v", 1, 2)
    with pytest.raises(BuildError):
        asm.emit("add", 1, 2)  # missing rs2
    with pytest.raises(BuildError):
        asm.emit("add", 1, 2, 3, 4)


def test_immediate_range_checked():
    asm = ProgramBuilder()
    asm.addi(Reg.t0, Reg.t0, 5000)
    with pytest.raises(BuildError):
        asm.assemble()


def test_float_pseudo_instructions():
    asm = ProgramBuilder(base=0)
    asm.fmv_s(FReg.fa0, FReg.fa1)
    asm.fneg_s(FReg.fa2, FReg.fa3)
    asm.fabs_s(FReg.fa4, FReg.fa5)
    program = asm.assemble()
    mnemonics = [decode(word).mnemonic for word in program.words]
    assert mnemonics == ["fsgnj.s", "fsgnjn.s", "fsgnjx.s"]


def test_program_to_bytes_little_endian():
    asm = ProgramBuilder(base=0)
    asm.word(0x11223344)
    raw = asm.assemble().to_bytes()
    assert raw == bytes([0x44, 0x33, 0x22, 0x11])


def test_entry_defaults_to_base_and_can_be_set():
    asm = ProgramBuilder(base=0x100)
    asm.nop()
    asm.label("start")
    asm.nop()
    assert asm.assemble().entry == 0x100
    asm2 = ProgramBuilder(base=0x100)
    asm2.nop()
    asm2.label("start")
    asm2.nop()
    asm2.set_entry("start")
    assert asm2.assemble().entry == 0x104


def test_register_name_strings_accepted():
    asm = ProgramBuilder(base=0)
    asm.add("t0", "a0", "x7")
    decoded = decode(asm.assemble().words[0])
    assert decoded.rd == int(Reg.t0)
    assert decoded.rs2 == 7
