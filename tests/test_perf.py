"""Tests for the performance-counter helper."""

from repro.common.perf import PerfCounters


def test_incr_and_get():
    perf = PerfCounters("core")
    perf.incr("instructions")
    perf.incr("instructions", 4)
    assert perf.get("instructions") == 5
    assert perf.get("missing") == 0


def test_ratio_guards_division_by_zero():
    perf = PerfCounters()
    assert perf.ratio("a", "b") == 0.0
    perf.incr("a", 10)
    perf.incr("b", 4)
    assert perf.ratio("a", "b") == 2.5


def test_merge_with_prefix():
    core = PerfCounters("core")
    cache = PerfCounters("cache")
    cache.incr("hits", 7)
    core.merge(cache, prefix="dcache_")
    assert core.get("dcache_hits") == 7


def test_set_and_reset():
    perf = PerfCounters()
    perf.set("cycles", 100)
    assert perf.get("cycles") == 100
    perf.reset()
    assert perf.get("cycles") == 0


def test_update_from_mapping_and_contains():
    perf = PerfCounters()
    perf.update_from({"loads": 3, "stores": 2})
    perf.update_from({"loads": 1})
    assert perf.get("loads") == 4
    assert "stores" in perf
    assert dict(perf.items())["stores"] == 2
    assert perf.as_dict() == {"loads": 4, "stores": 2}
