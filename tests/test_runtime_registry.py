"""Tests for the spec-based driver registry (`repro.runtime.registry`).

Covers the satellite checklist: every registered spec string round-trips
``parse_driver_spec`` → ``DriverSpec`` → ``driver_name``, the legacy
``-scalar`` strings normalize with a ``DeprecationWarning``, unknown
simulators/engines raise with the available options listed, and the
``register_driver`` hook plugs a third-party simulator into the device
facade and the session layer.
"""

from __future__ import annotations

import pytest

from repro.common.config import VortexConfig
from repro.mem.memory import MainMemory
from repro.runtime.device import VortexDevice
from repro.runtime.launch import LaunchOptions, resolve_options
from repro.runtime.registry import (
    _LEGACY_ALIASES,
    _REGISTRY,
    DriverSpec,
    UnknownDriverOptionError,
    available_simulators,
    create_driver,
    parse_driver_spec,
    register_driver,
    registered_engines,
)
from repro.runtime.report import ExecutionReport

# -- parsing and round-trips --------------------------------------------------------------

#: Every canonical spec string of the built-in registry.
CANONICAL_SPECS = [
    "simx",
    "simx:engine=vector",
    "simx:engine=scalar",
    "funcsim",
    "funcsim:engine=vector",
    "funcsim:engine=scalar",
]


@pytest.mark.parametrize("text", CANONICAL_SPECS)
def test_spec_strings_round_trip(text):
    spec = parse_driver_spec(text)
    assert isinstance(spec, DriverSpec)
    assert spec.driver_name == text
    # Parsing the canonical name again is a fixed point.
    assert parse_driver_spec(spec.driver_name) == spec


def test_parse_accepts_spec_instances():
    spec = DriverSpec("simx", engine="scalar")
    assert parse_driver_spec(spec) is spec


def test_parse_declared_options_round_trip():
    spec = parse_driver_spec("simx:engine=scalar,fastforward=off")
    assert spec.engine == "scalar"
    assert spec.options_dict == {"fastforward": "off"}
    assert spec.driver_name == "simx:engine=scalar,fastforward=off"
    assert parse_driver_spec(spec.driver_name) == spec


def test_unknown_options_raise_typed_error_listing_valid():
    """A typo'd option fails at parse time with the valid set listed."""
    with pytest.raises(UnknownDriverOptionError, match=r"'trce'.*trace.*trace_file") as excinfo:
        parse_driver_spec("simx:trce=vcd")
    assert excinfo.value.simulator == "simx"
    assert excinfo.value.option == "trce"
    assert "trace" in excinfo.value.valid
    # The spec-instance path validates too (e.g. specs built programmatically).
    with pytest.raises(UnknownDriverOptionError):
        parse_driver_spec(DriverSpec("simx", options=(("foo", "bar"),)))
    # funcsim declares no options at all.
    with pytest.raises(UnknownDriverOptionError, match=r"valid options: \[\]"):
        parse_driver_spec("funcsim:fastforward=on")
    # It is a ValueError subclass, so existing broad handlers still catch it.
    assert issubclass(UnknownDriverOptionError, ValueError)


def test_registered_options_are_introspectable():
    assert _REGISTRY["simx"].options == (
        "fastforward",
        "requests",
        "trace",
        "trace_file",
        "trace_channels",
    )
    assert _REGISTRY["funcsim"].options == ()


def test_default_engine_is_not_spelled_out():
    spec = parse_driver_spec("simx")
    assert spec.engine is None
    assert spec.driver_name == "simx"


@pytest.mark.parametrize(
    "legacy,canonical",
    [("simx-scalar", "simx:engine=scalar"), ("funcsim-scalar", "funcsim:engine=scalar")],
)
def test_legacy_strings_normalize_with_deprecation(legacy, canonical):
    with pytest.deprecated_call():
        spec = parse_driver_spec(legacy)
    assert spec.driver_name == canonical
    assert spec.engine == "scalar"


@pytest.mark.parametrize("legacy", ["simx-scalar", "funcsim-scalar"])
def test_legacy_strings_still_construct_working_devices(legacy):
    from repro.kernels import VecAddKernel

    with pytest.deprecated_call():
        device = VortexDevice(VortexConfig(), driver=legacy)
    run = VecAddKernel().run(device, size=32)
    assert run.passed
    assert run.report.engine.endswith("scalar")


# -- error reporting ----------------------------------------------------------------------


def test_unknown_simulator_lists_available():
    with pytest.raises(ValueError, match=r"unknown simulator 'verilator'.*funcsim.*simx"):
        parse_driver_spec("verilator")


def test_unknown_engine_lists_available():
    with pytest.raises(ValueError, match=r"unknown engine 'warp'.*scalar.*vector"):
        parse_driver_spec("simx:engine=warp")
    with pytest.raises(ValueError, match="unknown engine"):
        DriverSpec("simx").with_engine("warp")
    with pytest.raises(ValueError, match="unknown engine"):
        parse_driver_spec(DriverSpec("funcsim", engine="turbo"))


def test_malformed_and_duplicate_options_rejected():
    with pytest.raises(ValueError, match="malformed driver spec"):
        parse_driver_spec("simx:scalar")
    with pytest.raises(ValueError, match="duplicate option"):
        parse_driver_spec("simx:engine=scalar,engine=vector")
    with pytest.raises(TypeError):
        parse_driver_spec(42)


def test_register_driver_validates_inputs():
    with pytest.raises(ValueError, match="invalid simulator name"):
        register_driver("bad-name", lambda *a, **k: None)
    with pytest.raises(ValueError, match="at least one engine"):
        register_driver("okname", lambda *a, **k: None, engines=())
    with pytest.raises(ValueError, match="default engine"):
        register_driver("okname", lambda *a, **k: None, engines=("a",), default_engine="b")
    assert "okname" not in available_simulators()


# -- the registry drives construction -----------------------------------------------------


def test_create_driver_resolves_default_engine():
    driver = create_driver("simx", VortexConfig())
    assert driver.engine == "vector"
    driver = create_driver("simx:engine=scalar", VortexConfig())
    assert driver.engine == "scalar"


def test_registered_engines_exposed():
    assert registered_engines("simx") == ("vector", "scalar")
    assert set(available_simulators()) >= {"simx", "funcsim"}


def test_register_driver_hook_plugs_into_device_and_session():
    """A third-party simulator registered through the hook is reachable via
    spec strings on the device facade (and therefore the session layer)."""

    class NullDriver:
        name = "nullsim"

        def __init__(self, config, memory, engine="fast", turbo="off"):
            self.config = config or VortexConfig()
            self.memory = memory if memory is not None else MainMemory()
            self.engine = engine
            self.turbo = turbo

        def run(self, entry_pc, options=None):
            options = resolve_options(options)
            return ExecutionReport(
                driver=self.name,
                cycles=0,
                instructions=0,
                thread_instructions=0,
                engine=self.engine,
            )

        def invalidate_decode_caches(self):
            pass

    try:
        register_driver("nullsim", NullDriver, engines=("fast", "slow"))
        device = VortexDevice(VortexConfig(), driver="nullsim:engine=slow,turbo=on")
        assert device.driver.engine == "slow"
        assert device.driver.turbo == "on"
        assert device.memory is device.driver.memory
        report = device.launch(entry_pc=0x8000_0000)
        assert report.driver == "nullsim"
        with pytest.raises(ValueError, match="unknown engine"):
            VortexDevice(VortexConfig(), driver="nullsim:engine=warp")
    finally:
        _REGISTRY.pop("nullsim", None)


# -- launch options -----------------------------------------------------------------------


def test_launch_options_validation_and_merge():
    with pytest.raises(ValueError):
        LaunchOptions(max_cycles=0)
    with pytest.raises(ValueError):
        LaunchOptions(max_instructions=-1)
    base = LaunchOptions(max_cycles=100)
    merged = base.merged(max_cycles=None, max_instructions=5)
    assert merged.max_cycles == 100 and merged.max_instructions == 5
    assert base.merged() is base
    # A legacy keyword wins over the options field.
    assert resolve_options(LaunchOptions(max_cycles=7), max_cycles=9).max_cycles == 9
    assert resolve_options(None).max_cycles is None


def test_launch_options_entry_pc_override():
    """``LaunchOptions.entry_pc`` launches at the override, not the program entry."""
    from repro.isa.builder import ProgramBuilder
    from repro.isa.registers import Reg

    asm = ProgramBuilder(base=0x8000_0000)
    asm.li(Reg.t0, 11)  # default-entry path stores 11
    asm.li(Reg.t1, 0x4000)
    asm.sw(Reg.t0, 0, Reg.t1)
    asm.li(Reg.t2, 0)
    asm.tmc(Reg.t2)
    asm.label("alt")  # override path stores 77
    asm.li(Reg.t0, 77)
    asm.li(Reg.t1, 0x4000)
    asm.sw(Reg.t0, 0, Reg.t1)
    asm.li(Reg.t2, 0)
    asm.tmc(Reg.t2)
    program = asm.assemble()

    device = VortexDevice(VortexConfig(), driver="funcsim")
    device.upload_program(program)
    device.launch(options=LaunchOptions(entry_pc=program.address_of("alt")))
    assert device.memory.read_word(0x4000) == 77
    # The explicit entry_pc argument wins over the options field.
    device.launch(program.entry, options=LaunchOptions(entry_pc=program.address_of("alt")))
    assert device.memory.read_word(0x4000) == 11


def test_launch_options_are_uniform_across_drivers():
    """The same LaunchOptions object is accepted by both driver families."""
    from repro.core.emulator import SimulationLimitExceeded
    from repro.kernels import VecAddKernel

    options = LaunchOptions(max_instructions=10)
    for spec in ("simx", "funcsim"):
        device = VortexDevice(VortexConfig(), driver=spec)
        with pytest.raises(SimulationLimitExceeded) as excinfo:
            VecAddKernel().run(device, size=64, options=options)
        assert excinfo.value.kind == "instructions"
        assert excinfo.value.limit == 10


def test_kernel_run_leaves_entry_resolution_to_options():
    """Kernel.run must not pass an explicit entry that would outrank
    ``options.entry_pc`` in the launch precedence (regression)."""
    from repro.kernels import VecAddKernel

    device = VortexDevice(VortexConfig(), driver="funcsim")
    captured = {}
    real_launch = device.launch

    def spy(entry_pc=None, arg_address=None, options=None):
        captured["entry_pc"] = entry_pc
        captured["options"] = options
        return real_launch(entry_pc=entry_pc, arg_address=arg_address, options=options)

    device.launch = spy
    options = LaunchOptions(max_instructions=1_000_000)
    run = VecAddKernel().run(device, size=32, options=options)
    assert run.passed
    assert captured["entry_pc"] is None
    assert captured["options"] is options


def test_afu_tolerates_pre_options_driver_protocol():
    """An instance-constructed driver with the old ``run(entry_pc)``
    signature still launches; real launch options raise instead of being
    silently dropped."""
    from repro.runtime.driver import DriverError

    class OldProtocolDriver:
        name = "oldsim"

        def __init__(self):
            self.memory = MainMemory()

        def run(self, entry_pc):
            return ExecutionReport(
                driver=self.name, cycles=1, instructions=1, thread_instructions=1
            )

    device = VortexDevice(VortexConfig(), driver=OldProtocolDriver())
    report = device.launch(entry_pc=0x8000_0000)
    assert report.driver == "oldsim"
    with pytest.raises(DriverError, match="does not accept LaunchOptions"):
        device.launch(entry_pc=0x8000_0000, options=LaunchOptions(max_cycles=5))


def test_afu_does_not_misbind_options_to_legacy_budget_parameters():
    """A pre-options driver whose second parameter is a budget
    (``run(entry_pc, max_cycles=...)``) must not receive a LaunchOptions
    object positionally."""
    from repro.runtime.driver import DriverError

    class BudgetProtocolDriver:
        name = "budgetsim"

        def __init__(self):
            self.memory = MainMemory()
            self.seen_budget = None

        def run(self, entry_pc, max_cycles=1000):
            self.seen_budget = max_cycles
            return ExecutionReport(
                driver=self.name, cycles=1, instructions=1, thread_instructions=1
            )

    driver = BudgetProtocolDriver()
    device = VortexDevice(VortexConfig(), driver=driver)
    device.launch(entry_pc=0x8000_0000)
    assert driver.seen_budget == 1000  # the default, not a LaunchOptions object
    with pytest.raises(DriverError, match="does not accept LaunchOptions"):
        device.launch(entry_pc=0x8000_0000, options=LaunchOptions(max_cycles=5))


def test_max_instructions_budget_uniform_at_the_boundary():
    """LaunchOptions(max_instructions=N) behaves identically on both driver
    families at the exact boundary (both drivers retire the same warp
    instruction count for the same kernel)."""
    from repro.core.emulator import SimulationLimitExceeded
    from repro.kernels import VecAddKernel

    device = VortexDevice(VortexConfig(), driver="funcsim")
    executed = VecAddKernel().run(device, size=32).report.instructions
    for spec in ("simx", "funcsim"):
        # Budget of exactly `executed` raises on both backends...
        device = VortexDevice(VortexConfig(), driver=spec)
        with pytest.raises(SimulationLimitExceeded):
            VecAddKernel().run(device, size=32, options=LaunchOptions(max_instructions=executed))
        # ...while one more instruction of headroom completes on both.
        device = VortexDevice(VortexConfig(), driver=spec)
        run = VecAddKernel().run(
            device, size=32, options=LaunchOptions(max_instructions=executed + 1)
        )
        assert run.passed


def test_legacy_positional_budget_rejected_clearly():
    """``driver.run(pc, 500)`` (the pre-redesign positional budget) raises a
    clear TypeError instead of an AttributeError deep in option merging."""
    from repro.runtime.simx import SimxDriver

    driver = SimxDriver(VortexConfig())
    with pytest.raises(TypeError, match="LaunchOptions"):
        driver.run(0x8000_0000, 500)


def test_legacy_aliases_cover_only_known_strings():
    assert set(_LEGACY_ALIASES) == {"simx-scalar", "funcsim-scalar"}
