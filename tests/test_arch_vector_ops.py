"""Differential tests for the lane-vector operation wrappers.

``alu_op_vec`` / ``mul_op_vec`` / ``div_op_vec`` / ``branch_taken_vec`` /
``fpu_op_vec`` must agree bit for bit with their scalar counterparts on
every mnemonic, including the RISC-V corner cases (division by zero,
``INT_MIN / -1``, shift-amount masking, NaN and signed-zero handling,
saturating float conversions).
"""

import random

import numpy as np
import pytest

from repro.arch.alu import (
    ALU_VECTOR_OPS,
    BRANCH_VECTOR_OPS,
    DIV_VECTOR_OPS,
    MUL_VECTOR_OPS,
    alu_op,
    alu_op_vec,
    branch_taken,
    branch_taken_vec,
    div_op,
    div_op_vec,
    mul_op,
    mul_op_vec,
)
from repro.arch.fpu import FPU_VECTOR_OPS, fpu_op, fpu_op_vec

_INT_EDGES = [0, 1, 2, 0x1F, 0x20, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xDEADBEEF]
_FLOAT_EDGES = [
    0x00000000,  # +0
    0x80000000,  # -0
    0x3F800000,  # 1.0
    0xBF800000,  # -1.0
    0x7F800000,  # +inf
    0xFF800000,  # -inf
    0x7FC00000,  # canonical qNaN
    0xFFC00000,  # negative qNaN
    0x7F812345,  # signaling NaN with payload
    0x00000001,  # smallest denormal
    0x7F7FFFFF,  # largest finite
]


def _pairs(pool, rng, rounds=24):
    for _ in range(rounds):
        lhs = np.array([rng.choice(pool) for _ in range(8)], dtype=np.uint32)
        rhs = np.array([rng.choice(pool) for _ in range(8)], dtype=np.uint32)
        yield lhs, rhs


@pytest.mark.parametrize("mnemonic", sorted(ALU_VECTOR_OPS))
def test_alu_op_vec_matches_scalar(mnemonic):
    rng = random.Random(1)
    for lhs, rhs in _pairs(_INT_EDGES, rng):
        vector = alu_op_vec(mnemonic, lhs, rhs)
        scalar = [alu_op(mnemonic, int(a), int(b)) for a, b in zip(lhs, rhs)]
        assert vector.tolist() == scalar, mnemonic


@pytest.mark.parametrize("mnemonic", sorted(MUL_VECTOR_OPS))
def test_mul_op_vec_matches_scalar(mnemonic):
    rng = random.Random(2)
    for lhs, rhs in _pairs(_INT_EDGES, rng):
        vector = mul_op_vec(mnemonic, lhs, rhs)
        scalar = [mul_op(mnemonic, int(a), int(b)) for a, b in zip(lhs, rhs)]
        assert vector.tolist() == scalar, mnemonic


@pytest.mark.parametrize("mnemonic", sorted(DIV_VECTOR_OPS))
def test_div_op_vec_matches_scalar(mnemonic):
    rng = random.Random(3)
    for lhs, rhs in _pairs(_INT_EDGES, rng):
        vector = div_op_vec(mnemonic, lhs, rhs)
        scalar = [div_op(mnemonic, int(a), int(b)) for a, b in zip(lhs, rhs)]
        assert vector.tolist() == scalar, mnemonic


@pytest.mark.parametrize("mnemonic", sorted(BRANCH_VECTOR_OPS))
def test_branch_taken_vec_matches_scalar(mnemonic):
    rng = random.Random(4)
    for lhs, rhs in _pairs(_INT_EDGES, rng):
        vector = branch_taken_vec(mnemonic, lhs, rhs)
        scalar = [branch_taken(mnemonic, int(a), int(b)) for a, b in zip(lhs, rhs)]
        assert [bool(v) for v in vector] == scalar, mnemonic


@pytest.mark.parametrize("mnemonic", sorted(FPU_VECTOR_OPS))
def test_fpu_op_vec_matches_scalar(mnemonic):
    rng = random.Random(5)
    for _ in range(24):
        rs1 = np.array([rng.choice(_FLOAT_EDGES) if rng.random() < 0.5 else rng.getrandbits(32)
                        for _ in range(8)], dtype=np.uint32)
        rs2 = np.array([rng.choice(_FLOAT_EDGES) if rng.random() < 0.5 else rng.getrandbits(32)
                        for _ in range(8)], dtype=np.uint32)
        rs3 = np.array([rng.choice(_FLOAT_EDGES) if rng.random() < 0.5 else rng.getrandbits(32)
                        for _ in range(8)], dtype=np.uint32)
        vector = fpu_op_vec(mnemonic, rs1, rs2, rs3)
        scalar = [fpu_op(mnemonic, int(a), int(b), int(c)) for a, b, c in zip(rs1, rs2, rs3)]
        assert vector.tolist() == scalar, mnemonic


def test_vector_wrappers_reject_unknown_mnemonics():
    lanes = np.zeros(4, dtype=np.uint32)
    with pytest.raises(ValueError):
        alu_op_vec("frobnicate", lanes, lanes)
    with pytest.raises(ValueError):
        mul_op_vec("frobnicate", lanes, lanes)
    with pytest.raises(ValueError):
        div_op_vec("frobnicate", lanes, lanes)
    with pytest.raises(ValueError):
        branch_taken_vec("frobnicate", lanes, lanes)
    with pytest.raises(ValueError):
        fpu_op_vec("frobnicate", lanes, lanes, lanes)
