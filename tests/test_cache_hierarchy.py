"""Integration tests for the cache hierarchy (L1 / optional L2 / DRAM)."""


from repro.cache.cache import CacheRequest
from repro.cache.hierarchy import MemorySubsystem
from repro.common.config import CacheConfig, MemoryConfig, VortexConfig


def _drain(memsys, dcache, max_cycles=500):
    """Tick until the data cache of core 0 returns its responses."""
    responses = []
    for _ in range(max_cycles):
        grouped = memsys.tick()
        responses.extend(grouped.get(("d", 0), []))
        if responses and not memsys.busy:
            break
    return responses


def test_l1_miss_fills_from_dram():
    config = VortexConfig(memory=MemoryConfig(latency=20, bandwidth=1))
    memsys = MemorySubsystem(config)
    dcache = memsys.dcache(0)
    assert dcache.send(CacheRequest(address=0x1000, tag="load"))
    responses = _drain(memsys, dcache)
    assert [resp.tag for resp in responses] == ["load"]
    assert memsys.dram.perf.get("reads") == 1


def test_latency_scales_with_memory_config():
    def measure(latency):
        config = VortexConfig(memory=MemoryConfig(latency=latency, bandwidth=1))
        memsys = MemorySubsystem(config)
        memsys.dcache(0).send(CacheRequest(address=0x2000, tag="x"))
        cycles = 0
        while True:
            cycles += 1
            if memsys.tick().get(("d", 0)):
                return cycles

    assert measure(100) > measure(10) + 60


def test_second_access_hits_without_dram_traffic():
    config = VortexConfig(memory=MemoryConfig(latency=10, bandwidth=1))
    memsys = MemorySubsystem(config)
    dcache = memsys.dcache(0)
    dcache.send(CacheRequest(address=0x3000, tag="first"))
    _drain(memsys, dcache)
    reads_after_first = memsys.dram.perf.get("reads")
    dcache.send(CacheRequest(address=0x3004, tag="second"))
    responses = _drain(memsys, dcache)
    assert [resp.tag for resp in responses] == ["second"]
    assert memsys.dram.perf.get("reads") == reads_after_first


def test_l2_path_serves_l1_fills():
    config = VortexConfig(
        enable_l2=True,
        l2cache=CacheConfig(size=64 * 1024, num_banks=4),
        memory=MemoryConfig(latency=30, bandwidth=1),
    )
    memsys = MemorySubsystem(config)
    assert memsys.l2[0] is not None
    dcache = memsys.dcache(0)
    dcache.send(CacheRequest(address=0x4000, tag="via_l2"))
    responses = _drain(memsys, dcache)
    assert [resp.tag for resp in responses] == ["via_l2"]
    # The L2 saw the fill request from the L1.
    assert memsys.l2[0].perf.get("attempts") >= 1


def test_per_core_caches_are_private():
    config = VortexConfig(num_cores=2, memory=MemoryConfig(latency=10, bandwidth=2))
    memsys = MemorySubsystem(config)
    memsys.dcache(0).send(CacheRequest(address=0x5000, tag="c0"))
    memsys.dcache(1).send(CacheRequest(address=0x5000, tag="c1"))
    got = {0: [], 1: []}
    for _ in range(200):
        grouped = memsys.tick()
        for core in (0, 1):
            got[core].extend(grouped.get(("d", core), []))
    assert [r.tag for r in got[0]] == ["c0"]
    assert [r.tag for r in got[1]] == ["c1"]
    # Each L1 missed independently.
    assert memsys.dram.perf.get("reads") == 2


def test_counters_snapshot_contains_all_components():
    config = VortexConfig(num_cores=2, enable_l2=True)
    memsys = MemorySubsystem(config)
    counters = memsys.counters()
    assert "dram" in counters
    assert "dcache0" in counters and "icache1" in counters
    assert "l2_0" in counters


def test_icache_responses_routed_separately():
    config = VortexConfig(memory=MemoryConfig(latency=5, bandwidth=1))
    memsys = MemorySubsystem(config)
    memsys.icache(0).send(CacheRequest(address=0x8000_0000, tag="fetch"))
    fetched = []
    for _ in range(100):
        fetched.extend(memsys.tick().get(("i", 0), []))
    assert [r.tag for r in fetched] == ["fetch"]
