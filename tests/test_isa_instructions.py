"""Tests for the instruction specification table and the ISA taxonomy."""

import pytest

from repro.isa.instructions import (
    ExecUnit,
    GROUPS,
    SPEC_BY_MNEMONIC,
    VORTEX_EXTENSION,
    all_specs,
    lookup,
    specs_in_group,
)
from repro.isa.encoding import Opcode
from repro.isa import taxonomy


def test_vortex_extension_is_exactly_six_instructions():
    assert len(VORTEX_EXTENSION) == 6
    assert set(VORTEX_EXTENSION) == {"wspawn", "tmc", "split", "join", "bar", "tex"}


def test_vortex_extension_shares_one_custom_opcode():
    opcodes = {SPEC_BY_MNEMONIC[name].opcode for name in ("wspawn", "tmc", "split", "join", "bar")}
    assert opcodes == {Opcode.VX_EXT}


def test_tex_uses_r4_format():
    spec = SPEC_BY_MNEMONIC["tex"]
    assert spec.fmt.value == "R4"
    assert spec.unit == ExecUnit.TEX


def test_base_isa_groups_present():
    assert {"RV32I", "RV32M", "RV32F", "Zicsr", "VX"} <= set(GROUPS)
    assert len(specs_in_group("VX")) == 6


def test_lookup_is_case_insensitive_and_errors():
    assert lookup("ADD").mnemonic == "add"
    with pytest.raises(KeyError):
        lookup("vadd.vv")


def test_loads_and_stores_marked():
    assert SPEC_BY_MNEMONIC["lw"].is_load and SPEC_BY_MNEMONIC["lw"].unit == ExecUnit.LSU
    assert SPEC_BY_MNEMONIC["sw"].is_store and not SPEC_BY_MNEMONIC["sw"].writes_rd
    assert SPEC_BY_MNEMONIC["flw"].rd_float
    assert SPEC_BY_MNEMONIC["fsw"].rs2_float


def test_branches_do_not_write_rd():
    for name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        assert SPEC_BY_MNEMONIC[name].is_branch
        assert not SPEC_BY_MNEMONIC[name].writes_rd


def test_every_spec_has_unique_mnemonic():
    mnemonics = [spec.mnemonic for spec in all_specs()]
    assert len(mnemonics) == len(set(mnemonics))


# -- taxonomy (Table 1) -------------------------------------------------------------


def test_table1_contains_all_surveyed_isas():
    names = {profile.name for profile in taxonomy.TABLE1}
    assert names == {"RDNA", "GCN", "PTX", "GEM", "PowerVR", "Vortex"}


def test_every_isa_supports_texture_sampling():
    coverage = taxonomy.category_coverage()
    assert all(entry["texture"] for entry in coverage.values())


def test_vortex_covers_every_simt_category():
    coverage = taxonomy.category_coverage()["Vortex"]
    assert all(coverage.values())


def test_extension_summary_matches_table2():
    summary = taxonomy.extension_summary()
    assert set(summary) == set(VORTEX_EXTENSION)
    assert len(taxonomy.TABLE2) == 6
