"""Tests for the integer ALU semantics (RV32I/M corner cases included)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.alu import alu_op, branch_taken, div_op, mul_op
from repro.common.bitutils import to_int32, to_uint32

u32 = st.integers(min_value=0, max_value=2**32 - 1)


@given(u32, u32)
def test_add_sub_wraparound(a, b):
    assert alu_op("add", a, b) == (a + b) % 2**32
    assert alu_op("sub", a, b) == (a - b) % 2**32


@given(u32, st.integers(min_value=0, max_value=31))
def test_shifts(a, shamt):
    assert alu_op("sll", a, shamt) == (a << shamt) % 2**32
    assert alu_op("srl", a, shamt) == a >> shamt
    assert alu_op("sra", a, shamt) == to_uint32(to_int32(a) >> shamt)


def test_shift_amount_masked_to_five_bits():
    assert alu_op("sll", 1, 33) == 2
    assert alu_op("srl", 4, 0x21) == 2


@given(u32, u32)
def test_comparisons(a, b):
    assert alu_op("slt", a, b) == (1 if to_int32(a) < to_int32(b) else 0)
    assert alu_op("sltu", a, b) == (1 if a < b else 0)


@given(u32, u32)
def test_bitwise(a, b):
    assert alu_op("xor", a, b) == a ^ b
    assert alu_op("or", a, b) == a | b
    assert alu_op("and", a, b) == a & b


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        alu_op("nand", 1, 2)


# -- RV32M ----------------------------------------------------------------------------


@given(u32, u32)
def test_mul_low_half(a, b):
    assert mul_op("mul", a, b) == (to_int32(a) * to_int32(b)) % 2**32


@given(u32, u32)
def test_mulh_variants(a, b):
    assert mul_op("mulh", a, b) == to_uint32((to_int32(a) * to_int32(b)) >> 32)
    assert mul_op("mulhu", a, b) == to_uint32((a * b) >> 32)
    assert mul_op("mulhsu", a, b) == to_uint32((to_int32(a) * b) >> 32)


def test_divide_by_zero_semantics():
    assert div_op("div", 17, 0) == 0xFFFFFFFF
    assert div_op("divu", 17, 0) == 0xFFFFFFFF
    assert div_op("rem", 17, 0) == 17
    assert div_op("remu", 17, 0) == 17


def test_div_overflow_case():
    int_min = 0x80000000
    assert div_op("div", int_min, to_uint32(-1)) == int_min
    assert div_op("rem", int_min, to_uint32(-1)) == 0


@given(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.integers(min_value=-(2**31), max_value=2**31 - 1).filter(lambda v: v != 0),
)
def test_signed_division_truncates_toward_zero(a, b):
    if a == -(2**31) and b == -1:
        return
    quotient = to_int32(div_op("div", to_uint32(a), to_uint32(b)))
    remainder = to_int32(div_op("rem", to_uint32(a), to_uint32(b)))
    assert quotient == int(a / b)
    assert quotient * b + remainder == a


@given(u32, u32)
def test_unsigned_division_identity(a, b):
    if b == 0:
        return
    quotient = div_op("divu", a, b)
    remainder = div_op("remu", a, b)
    assert quotient * b + remainder == a


# -- branches -------------------------------------------------------------------------


@given(u32, u32)
def test_branch_comparisons(a, b):
    assert branch_taken("beq", a, b) == (a == b)
    assert branch_taken("bne", a, b) == (a != b)
    assert branch_taken("blt", a, b) == (to_int32(a) < to_int32(b))
    assert branch_taken("bge", a, b) == (to_int32(a) >= to_int32(b))
    assert branch_taken("bltu", a, b) == (a < b)
    assert branch_taken("bgeu", a, b) == (a >= b)


def test_branch_unknown_rejected():
    with pytest.raises(ValueError):
        branch_taken("bz", 0, 0)
