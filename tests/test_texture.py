"""Tests for texture formats, address generation, sampling and the texture unit."""

import numpy as np
from hypothesis import given, strategies as st

from repro.arch.csr import CsrFile
from repro.common.bitutils import float_to_bits
from repro.isa.csr import TexCSR, tex_csr
from repro.mem.memory import MainMemory
from repro.texture.address import BLEND_ONE, generate_addresses, mip_dimensions, wrap_coordinate
from repro.texture.formats import (
    TexFilter,
    TexFormat,
    TexWrap,
    decode_texel,
    encode_texel,
    pack_rgba8,
    texel_size,
    unpack_rgba8,
)
from repro.texture.sampler import TextureSampler, TextureState, blend_quad
from repro.texture.unit import TextureUnit

rgba = st.tuples(*[st.integers(min_value=0, max_value=255)] * 4)


# -- formats ---------------------------------------------------------------------------


@given(rgba)
def test_rgba8_roundtrip(color):
    assert decode_texel(TexFormat.RGBA8, encode_texel(TexFormat.RGBA8, color)) == color
    assert unpack_rgba8(pack_rgba8(color)) == color


@given(rgba)
def test_lossy_formats_preserve_top_bits(color):
    decoded = decode_texel(TexFormat.RGB565, encode_texel(TexFormat.RGB565, color))
    assert abs(decoded[0] - color[0]) <= 8
    assert abs(decoded[1] - color[1]) <= 4
    assert abs(decoded[2] - color[2]) <= 8
    assert decoded[3] == 255
    decoded4 = decode_texel(TexFormat.RGBA4, encode_texel(TexFormat.RGBA4, color))
    assert all(abs(decoded4[i] - color[i]) <= 16 for i in range(4))


def test_r8_and_l8a8_formats():
    assert decode_texel(TexFormat.R8, 0x7F) == (0x7F, 0x7F, 0x7F, 0xFF)
    assert decode_texel(TexFormat.L8A8, 0x80FF) == (0xFF, 0xFF, 0xFF, 0x80)
    assert texel_size(TexFormat.RGBA8) == 4
    assert texel_size(TexFormat.R8) == 1
    assert texel_size(TexFormat.RGB565) == 2


# -- address generation -----------------------------------------------------------------


def test_wrap_modes():
    assert wrap_coordinate(-1, 8, TexWrap.CLAMP) == 0
    assert wrap_coordinate(9, 8, TexWrap.CLAMP) == 7
    assert wrap_coordinate(9, 8, TexWrap.REPEAT) == 1
    assert wrap_coordinate(-1, 8, TexWrap.REPEAT) == 7
    assert wrap_coordinate(8, 8, TexWrap.MIRROR) == 7
    assert wrap_coordinate(9, 8, TexWrap.MIRROR) == 6


def test_mip_dimensions_clamp_at_one():
    assert mip_dimensions(5, 4, 0) == (32, 16)
    assert mip_dimensions(5, 4, 3) == (4, 2)
    assert mip_dimensions(5, 4, 10) == (1, 1)


def test_point_sampling_address():
    quad = generate_addresses(
        u=0.5, v=0.25, base=0x1000, width_log2=3, height_log2=3,
        fmt=TexFormat.RGBA8, wrap=TexWrap.CLAMP, filter_mode=TexFilter.POINT,
    )
    # (u, v) = (0.5, 0.25) on an 8x8 texture is texel (4, 2).
    assert quad.addresses[0] == 0x1000 + (2 * 8 + 4) * 4
    assert quad.blend_u == 0 and quad.blend_v == 0
    assert quad.unique_addresses == [quad.addresses[0]]


def test_bilinear_quad_and_blend_factors():
    quad = generate_addresses(
        u=0.5, v=0.5, base=0, width_log2=2, height_log2=2,
        fmt=TexFormat.RGBA8, wrap=TexWrap.CLAMP, filter_mode=TexFilter.BILINEAR,
    )
    # Texel centre between (1,1) and (2,2) with half-way blends.
    assert len(set(quad.addresses)) == 4
    assert quad.blend_u == BLEND_ONE // 2
    assert quad.blend_v == BLEND_ONE // 2


def test_bilinear_clamps_at_border():
    quad = generate_addresses(
        u=0.999, v=0.001, base=0, width_log2=2, height_log2=2,
        fmt=TexFormat.RGBA8, wrap=TexWrap.CLAMP, filter_mode=TexFilter.BILINEAR,
    )
    assert len(quad.unique_addresses) <= 2  # x clamped to the last column


# -- sampler ----------------------------------------------------------------------------


def _checkerboard_memory(width=8, height=8):
    memory = MainMemory()
    image = np.zeros((height, width), dtype=np.uint32)
    image[::2, ::2] = pack_rgba8((255, 255, 255, 255))
    image[1::2, 1::2] = pack_rgba8((255, 255, 255, 255))
    memory.write_bytes(0x2000, image.astype("<u4").tobytes())
    return memory, image


def _state(width=8, height=8, filter_mode=TexFilter.BILINEAR):
    return TextureState(
        address=0x2000,
        width_log2=width.bit_length() - 1,
        height_log2=height.bit_length() - 1,
        fmt=TexFormat.RGBA8,
        wrap=TexWrap.CLAMP,
        filter_mode=filter_mode,
        mip_offsets=[0] * 12,
    )


def test_point_sampling_returns_exact_texel():
    memory, image = _checkerboard_memory()
    sampler = TextureSampler(memory)
    state = _state(filter_mode=TexFilter.POINT)
    color = sampler.sample(state, u=(2 + 0.5) / 8, v=(4 + 0.5) / 8, lod=0)
    assert color == int(image[4, 2])


def test_bilinear_between_black_and_white_is_gray():
    memory = MainMemory()
    white = pack_rgba8((255, 255, 255, 255))
    memory.load_words(0x3000, [0, white, 0, white])  # 2x2 texture rows: (0, w), (0, w)
    state = TextureState(
        address=0x3000, width_log2=1, height_log2=1,
        fmt=TexFormat.RGBA8, wrap=TexWrap.CLAMP, filter_mode=TexFilter.BILINEAR,
        mip_offsets=[0] * 12,
    )
    sampler = TextureSampler(memory)
    color = sampler.sample(state, u=0.5, v=0.5, lod=0)
    r, g, b, a = unpack_rgba8(color)
    assert abs(r - 127) <= 1 and abs(g - 127) <= 1 and abs(b - 127) <= 1


def test_blend_quad_weights():
    texels = [(0, 0, 0, 0), (255, 255, 255, 255), (0, 0, 0, 0), (255, 255, 255, 255)]
    color = blend_quad(texels, blend_u=BLEND_ONE // 2, blend_v=0)
    assert abs(color[0] - 127) <= 1
    color_full = blend_quad(texels, blend_u=BLEND_ONE - 1, blend_v=0)
    assert color_full[0] >= 253


def test_state_from_csrs_roundtrip():
    csr = CsrFile(core_id=0, num_warps=4, num_threads=4, num_cores=1)
    csr.write(tex_csr(0, TexCSR.ADDR), 0x1234)
    csr.write(tex_csr(0, TexCSR.WIDTH), 5)
    csr.write(tex_csr(0, TexCSR.HEIGHT), 6)
    csr.write(tex_csr(0, TexCSR.FORMAT), int(TexFormat.RGB565))
    csr.write(tex_csr(0, TexCSR.WRAP), int(TexWrap.REPEAT))
    csr.write(tex_csr(0, TexCSR.FILTER), int(TexFilter.POINT))
    csr.write(tex_csr(0, TexCSR.MIPOFF, 1), 0x400)
    state = TextureState.from_csrs(csr, 0)
    assert state.address == 0x1234
    assert (state.width_log2, state.height_log2) == (5, 6)
    assert state.fmt == TexFormat.RGB565
    assert state.wrap == TexWrap.REPEAT
    assert state.filter_mode == TexFilter.POINT
    assert state.mip_base(1) == 0x1234 + 0x400
    assert state.max_lod == 6


def _mipmapped_memory():
    """An 8x8 red mip 0 and a 4x4 green mip 1 at a programmed offset."""
    memory = MainMemory()
    red = pack_rgba8((255, 0, 0, 255))
    green = pack_rgba8((0, 255, 0, 255))
    mip0 = np.full(8 * 8, red, dtype="<u4")
    mip1 = np.full(4 * 4, green, dtype="<u4")
    base, mip1_offset = 0x4000, 8 * 8 * 4
    memory.write_bytes(base, mip0.tobytes() + mip1.tobytes())
    state = TextureState(
        address=base, width_log2=3, height_log2=3,
        fmt=TexFormat.RGBA8, wrap=TexWrap.CLAMP, filter_mode=TexFilter.BILINEAR,
        mip_offsets=[0, mip1_offset],  # only two levels programmed
    )
    return memory, state, red, green


def test_mipmapped_sampling_uses_the_programmed_offset():
    memory, state, red, green = _mipmapped_memory()
    sampler = TextureSampler(memory)
    assert sampler.sample(state, 0.5, 0.5, 0) == red
    assert sampler.sample(state, 0.5, 0.5, 1) == green


def test_lod_clamps_to_programmed_mip_offsets():
    """``max_lod`` (3 for 8x8) exceeds the two programmed MIPOFF entries; the
    sampler must clamp to the last addressable level instead of pairing
    mip-level dimensions with the level-0 base address."""
    memory, state, _, green = _mipmapped_memory()
    sampler = TextureSampler(memory)
    assert state.max_lod == 3
    assert state.max_addressable_lod == 1
    for lod in (2, 3, 99):
        assert sampler.sample(state, 0.5, 0.5, lod) == green
        assert state.clamp_lod(lod) == 1
    # The batched sampler applies the same clamp.
    colors = sampler.sample_many(state, np.array([0.5]), np.array([0.5]), np.array([3]))
    assert int(colors[0]) == green


def test_sample_many_matches_scalar_sampler():
    """The batched sampler is bit-identical to the scalar one across
    formats, wrap modes, filters and mip levels."""
    rng = np.random.default_rng(11)
    for fmt in TexFormat:
        memory = MainMemory()
        base = 0x8000
        texels = 8 * 8 + 4 * 4
        memory.write_bytes(base, rng.integers(0, 256, texels * 4, dtype=np.uint8).tobytes())
        for wrap in TexWrap:
            for filter_mode in TexFilter:
                state = TextureState(
                    address=base, width_log2=3, height_log2=3, fmt=fmt,
                    wrap=wrap, filter_mode=filter_mode,
                    mip_offsets=[0, 8 * 8 * 4],
                )
                sampler = TextureSampler(memory)
                us = rng.uniform(-2.5, 3.5, size=64)
                vs = rng.uniform(-2.5, 3.5, size=64)
                lods = rng.integers(0, 4, size=64)
                expected = np.array(
                    [sampler.sample(state, u, v, lod) for u, v, lod in zip(us, vs, lods)],
                    dtype=np.uint32,
                )
                got = sampler.sample_many(state, us, vs, lods)
                assert np.array_equal(got, expected), (fmt, wrap, filter_mode)


def test_sample_many_zeroes_non_finite_coordinates():
    memory, state, red, _ = _mipmapped_memory()
    sampler = TextureSampler(memory)
    us = np.array([np.nan, np.inf, 0.5])
    vs = np.array([0.5, -np.inf, np.nan])
    expected = np.array(
        [sampler.sample(state, u, v, 0) for u, v in zip(us, vs)], dtype=np.uint32
    )
    assert np.array_equal(sampler.sample_many(state, us, vs, 0), expected)


# -- texture unit ---------------------------------------------------------------------------


def _configured_unit():
    memory, image = _checkerboard_memory()
    csr = CsrFile(core_id=0, num_warps=4, num_threads=4, num_cores=1)
    csr.write(tex_csr(0, TexCSR.ADDR), 0x2000)
    csr.write(tex_csr(0, TexCSR.WIDTH), 3)
    csr.write(tex_csr(0, TexCSR.HEIGHT), 3)
    csr.write(tex_csr(0, TexCSR.FORMAT), int(TexFormat.RGBA8))
    csr.write(tex_csr(0, TexCSR.WRAP), int(TexWrap.CLAMP))
    csr.write(tex_csr(0, TexCSR.FILTER), int(TexFilter.BILINEAR))
    return TextureUnit(memory), csr, image


def test_texture_unit_dedups_across_threads():
    unit, csr, _ = _configured_unit()
    # All four threads sample the same coordinate -> one unique quad.
    operand = (float_to_bits(0.5), float_to_bits(0.5), 0)
    result = unit.sample_warp(csr, 0, [operand] * 4)
    assert result.total_addresses == 16
    assert len(result.unique_addresses) == 4
    assert result.dedup_savings == 12
    assert len(result.colors) == 4
    assert len(set(result.colors)) == 1


def test_texture_unit_skips_inactive_threads():
    unit, csr, _ = _configured_unit()
    operand = (float_to_bits(0.25), float_to_bits(0.25), 0)
    result = unit.sample_warp(csr, 0, [operand, None, operand, None])
    assert result.colors[1] == 0 and result.colors[3] == 0
    assert result.colors[0] == result.colors[2]


def test_texture_unit_issue_latency_positive():
    unit, _, _ = _configured_unit()
    assert unit.issue_latency(4) >= 1


# -- trilinear filtering --------------------------------------------------------------------


def test_trilinear_blends_adjacent_mip_levels():
    memory, state, red, green = _mipmapped_memory()
    state.filter_mode = TexFilter.TRILINEAR
    sampler = TextureSampler(memory)
    assert sampler.sample(state, 0.5, 0.5, 0.0) == red
    assert sampler.sample(state, 0.5, 0.5, 1.0) == green
    half = unpack_rgba8(sampler.sample(state, 0.5, 0.5, 0.5))
    assert abs(half[0] - 127) <= 1 and abs(half[1] - 127) <= 1  # 50/50 red/green
    quarter = unpack_rgba8(sampler.sample(state, 0.5, 0.5, 0.25))
    assert quarter[0] > quarter[1]  # still mostly the finer (red) level


def test_trilinear_fractional_lods_match_scalar_sampler():
    """Fractional, negative, oversized and NaN LODs are bit-identical
    between the scalar and the batched trilinear paths."""
    memory, state, _, _ = _mipmapped_memory()
    state.filter_mode = TexFilter.TRILINEAR
    sampler = TextureSampler(memory)
    rng = np.random.default_rng(13)
    us = rng.uniform(-1.5, 2.5, size=128)
    vs = rng.uniform(-1.5, 2.5, size=128)
    lods = rng.uniform(-1.0, 5.0, size=128)
    lods[::11] = np.nan
    expected = np.array(
        [sampler.sample(state, u, v, lod) for u, v, lod in zip(us, vs, lods)],
        dtype=np.uint32,
    )
    assert np.array_equal(sampler.sample_many(state, us, vs, lods), expected)


def test_trilinear_warp_paths_match_and_count_fetches():
    """sample_warp and sample_warp_vector agree on colors and perf counters
    for a trilinear-filtered stage: two quads (8 fetches) per thread, except
    threads whose LOD pins at the coarsest level, which skip the second
    fetch (4) on both paths."""
    unit_scalar, csr, _ = _configured_unit()
    memory = unit_scalar.sampler.memory
    unit_vector = TextureUnit(memory)
    csr.write(tex_csr(0, TexCSR.FILTER), int(TexFilter.TRILINEAR))
    csr.write(tex_csr(0, TexCSR.MIPOFF, 1), 8 * 8 * 4)
    memory.write_bytes(0x2000 + 8 * 8 * 4, bytes(4 * 4 * 4))  # black 4x4 mip 1
    rng = np.random.default_rng(21)
    us = rng.uniform(0, 1, 4).astype(np.float32)
    vs = rng.uniform(0, 1, 4).astype(np.float32)
    ls = np.array([0.0, 0.5, 1.0, 5.0], dtype=np.float32)
    operands = [
        (float_to_bits(float(u)), float_to_bits(float(v)), float_to_bits(float(lod)))
        for u, v, lod in zip(us, vs, ls)
    ]
    scalar = unit_scalar.sample_warp(csr, 0, operands)
    vector = unit_vector.sample_warp_vector(
        csr, 0, us.view(np.uint32), vs.view(np.uint32), ls.view(np.uint32)
    )
    assert list(vector) == scalar.colors
    # lods 0.0/0.5/1.0 blend two levels (8 fetches each); 5.0 clamps to the
    # coarsest level of the 8x8 chain (3) and skips the second quad (4).
    assert scalar.total_addresses == 8 + 8 + 8 + 4
    assert unit_vector.perf.get("texel_fetches") == scalar.total_addresses
    assert unit_vector.perf.get("unique_fetches") == len(scalar.unique_addresses)


def test_oversized_float_lods_clamp_to_the_coarsest_level():
    """Float LOD operands far beyond the mip chain must clamp to the
    coarsest level (heavy minification), not snap back to the base level."""
    unit_scalar, csr, _ = _configured_unit()
    memory = unit_scalar.sampler.memory
    unit_vector = TextureUnit(memory)
    # Program the full 8x8 chain; the coarsest (1x1) level is blue.
    blue = pack_rgba8((0, 0, 255, 255))
    offset = 8 * 8 * 4
    for lod, texels in ((1, 4 * 4), (2, 2 * 2), (3, 1 * 1)):
        csr.write(tex_csr(0, TexCSR.MIPOFF, lod), offset)
        memory.write_bytes(0x2000 + offset, np.full(texels, blue, dtype="<u4").tobytes())
        offset += texels * 4
    for filter_csr in (TexFilter.BILINEAR, TexFilter.TRILINEAR):
        csr.write(tex_csr(0, TexCSR.FILTER), int(filter_csr))
        for lod in (100.0, float(np.finfo(np.float32).max), float("inf")):
            operand = (float_to_bits(0.5), float_to_bits(0.5), float_to_bits(lod))
            scalar = unit_scalar.sample_warp(csr, 0, [operand])
            bits = np.array([float_to_bits(0.5)], dtype=np.uint32)
            lod_bits = np.array([float_to_bits(lod)], dtype=np.uint32)
            vector = unit_vector.sample_warp_vector(csr, 0, bits, bits, lod_bits)
            assert scalar.colors[0] == blue, (filter_csr, lod)
            assert int(vector[0]) == blue, (filter_csr, lod)


def test_state_snapshot_cached_until_tex_csr_write():
    """The dirty-bit cache returns the same snapshot object until a texture
    CSR write bumps the epoch; unrelated CSR writes do not invalidate."""
    unit, csr, _ = _configured_unit()
    first = unit.state_for(csr, 0)
    assert unit.state_for(csr, 0) is first
    csr.write(0x800, 123)  # not a texture CSR
    assert unit.state_for(csr, 0) is first
    csr.write(tex_csr(0, TexCSR.WIDTH), 4)
    refreshed = unit.state_for(csr, 0)
    assert refreshed is not first
    assert refreshed.width_log2 == 4


# -- mipmap generation ----------------------------------------------------------------------


@given(
    width_log2=st.integers(min_value=0, max_value=6),
    height_log2=st.integers(min_value=0, max_value=6),
)
def test_generate_mipmaps_halves_down_to_1x1(width_log2, height_log2):
    """The chain halves each dimension (clamped at 1) down to 1x1, and every
    MIPOFF entry equals the byte size of all finer levels."""
    from repro.graphics.pipeline import TextureBinding

    width, height = 1 << width_log2, 1 << height_log2
    rng = np.random.default_rng(width * 64 + height)
    image = rng.integers(0, 256, size=(height, width, 4), dtype=np.uint8)
    binding = TextureBinding(image)
    assert binding.mip_count == 1
    levels = binding.generate_mipmaps()
    assert levels == max(width_log2, height_log2) + 1
    assert binding.mip_count == levels
    offset, w, h = 0, width, height
    for _lod, mipoff in enumerate(binding.state.mip_offsets):
        assert mipoff == offset
        offset += w * h * 4
        w, h = max(w // 2, 1), max(h // 2, 1)
    # The last programmed level is 1x1 and max_addressable_lod spans the chain.
    assert (w, h) == (1, 1) or levels == 1
    assert binding.state.max_addressable_lod == levels - 1


def test_generate_mipmaps_box_filter_averages():
    """A solid 2x2-block checkerboard averages to flat gray one level down."""
    from repro.graphics.pipeline import TextureBinding

    image = np.zeros((4, 4, 4), dtype=np.uint8)
    image[0::2, 0::2] = 255
    image[1::2, 1::2] = 255
    binding = TextureBinding(image, filter_mode=TexFilter.POINT)
    binding.generate_mipmaps()
    word = binding._sampler.sample(binding.state, 0.25, 0.25, 1)
    r, g, b, a = unpack_rgba8(word)
    assert r == g == b == a == 128  # (255 + 255 + 0 + 0 + 2) >> 2
