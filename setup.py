"""Setup shim so editable installs work on environments without the
``wheel`` package (``pip install -e . --no-use-pep517``).  All project
metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
