"""Graphics rendering: the software pipeline plus hardware texture sampling.

Two things happen here, mirroring sections 4.2 and 5.5 of the paper:

1. The OpenGL-ES-style context renders a textured, depth-tested scene
   entirely in software (host geometry, tile binning, rasterization,
   fragment ops) and writes it out as a PPM image.
2. The same texture is then sampled on the Vortex device itself, once with
   the hardware ``tex`` instruction and once with the pure-software sampling
   kernel, reproducing the Figure 20 comparison for one configuration.

Run with::

    python examples/graphics_rendering.py
"""

from __future__ import annotations

import math
import time
from pathlib import Path

import numpy as np

from repro import VortexConfig, VortexDevice
from repro.graphics import GraphicsContext, Matrix4, Vertex
from repro.graphics.fragment import FogState
from repro.kernels.texture import hardware_texture_kernel, software_texture_kernel
from repro.texture.formats import TexFilter


def checkerboard_texture(size: int = 32) -> np.ndarray:
    """An RGBA checkerboard with a colored gradient."""
    texture = np.zeros((size, size, 4), dtype=np.uint8)
    ys, xs = np.mgrid[0:size, 0:size]
    checker = ((xs // 4 + ys // 4) % 2).astype(np.uint8)
    texture[..., 0] = 255 * checker
    texture[..., 1] = (255 * xs / size).astype(np.uint8)
    texture[..., 2] = (255 * ys / size).astype(np.uint8)
    texture[..., 3] = 255
    return texture


def render_scene(width: int = 128, height: int = 128,
                 engine: str = "vector") -> GraphicsContext:
    """Render two overlapping textured triangles with depth testing and fog."""
    ctx = GraphicsContext(width, height, tile_size=16, engine=engine)
    ctx.set_mvp(Matrix4.perspective(math.radians(60.0), width / height, 0.1, 10.0)
                @ Matrix4.translation(0.0, 0.0, -2.5)
                @ Matrix4.rotation_y(0.4))
    ctx.clear(color=(20, 20, 40, 255))
    ctx.fragment_ops.fog = FogState(enabled=True, color=(0.08, 0.08, 0.16), start=0.6, end=1.0)
    ctx.bind_texture(checkerboard_texture(), filter_mode=TexFilter.BILINEAR)

    quad = [
        Vertex(position=(-1.0, -1.0, 0.0, 1.0), uv=(0.0, 1.0)),
        Vertex(position=(1.0, -1.0, 0.0, 1.0), uv=(1.0, 1.0)),
        Vertex(position=(1.0, 1.0, 0.0, 1.0), uv=(1.0, 0.0)),
        Vertex(position=(-1.0, -1.0, 0.0, 1.0), uv=(0.0, 1.0)),
        Vertex(position=(1.0, 1.0, 0.0, 1.0), uv=(1.0, 0.0)),
        Vertex(position=(-1.0, 1.0, 0.0, 1.0), uv=(0.0, 0.0)),
    ]
    occluder = [
        Vertex(position=(-0.4, -0.4, 0.5, 1.0), color=(1.0, 0.8, 0.2, 1.0)),
        Vertex(position=(0.6, -0.2, 0.5, 1.0), color=(1.0, 0.4, 0.2, 1.0)),
        Vertex(position=(0.1, 0.7, 0.5, 1.0), color=(1.0, 0.6, 0.1, 1.0)),
    ]
    start = time.perf_counter()
    ctx.draw(quad)
    ctx.bind_texture(None)
    ctx.draw(occluder)
    ctx.draw_seconds = time.perf_counter() - start
    return ctx


def save_ppm(path: Path, image: np.ndarray) -> None:
    """Write an (H, W, 4) uint8 image as a binary PPM file."""
    height, width = image.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(image[..., :3].tobytes())


def device_texture_comparison() -> None:
    """Sample the texture on the device: hardware ``tex`` vs software kernel."""
    results = {}
    for label, factory in (("hardware", hardware_texture_kernel), ("software", software_texture_kernel)):
        device = VortexDevice(VortexConfig(), driver="simx")
        run = factory("bilinear").run(device, size=16 * 16)
        results[label] = run.report.cycles
        assert run.passed
    speedup = results["software"] / results["hardware"]
    print("device bilinear sampling (16x16 target):")
    print("  software kernel :", results["software"], "cycles")
    print("  tex instruction :", results["hardware"], "cycles")
    print(f"  acceleration    : {speedup:.2f}x")


def main() -> None:
    contexts = {engine: render_scene(engine=engine) for engine in ("scalar", "vector")}
    ctx = contexts["vector"]
    assert np.array_equal(
        contexts["scalar"].framebuffer.color, ctx.framebuffer.color
    ), "graphics engines disagree"
    output = Path(__file__).with_name("textured_scene.ppm")
    save_ppm(output, ctx.framebuffer.to_rgba_array())
    stats = ctx.tiles.bin_statistics()
    print("software renderer (vector engine, verified against scalar):")
    print("  image written to       :", output)
    print("  fragments written       :", ctx.fragment_ops.fragments_written)
    print("  depth-test kills        :", ctx.fragment_ops.depth_kills)
    print("  occupied screen tiles   :", int(stats["occupied"]), "of", int(stats["tiles"]))
    print(f"  draw wall-clock         : scalar {contexts['scalar'].draw_seconds * 1e3:.1f} ms, "
          f"vector {contexts['vector'].draw_seconds * 1e3:.1f} ms "
          "(single runs; see BENCH_graphics.json for best-of-N)")
    print()
    device_texture_comparison()


if __name__ == "__main__":
    main()
