"""Quickstart: run a vector-addition kernel on the Vortex cycle-level simulator.

This is the smallest end-to-end flow through the stack: build a device,
stage buffers through the command processor, launch the kernel over the
SIMT runtime, read the results back and print the performance report.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LaunchOptions, VortexConfig, VortexDevice
from repro.kernels import VecAddKernel


def main() -> None:
    # A single 4-wavefront x 4-thread core — the paper's baseline config.
    # Drivers are named by spec string: "simx" (cycle-level, vectorized
    # engine), "simx:engine=scalar" (per-thread reference), "funcsim", ...
    config = VortexConfig()
    device = VortexDevice(config, driver="simx")

    # The kernel object owns the device-side binary (assembled through the
    # builder DSL) and the host-side staging/verification code.  Launch
    # parameters (cycle/instruction budgets, entry override) are one
    # LaunchOptions record, uniform across every driver.
    kernel = VecAddKernel()
    run = kernel.run(device, size=256, options=LaunchOptions(max_cycles=1_000_000))

    result = run.context["out"].read(np.uint32, run.context["size"])
    expected = run.context["a"] + run.context["b"]

    print("vecadd on", device.driver_name)
    print("  correct results:", bool(np.array_equal(result, expected)))
    print("  instructions   :", run.report.instructions)
    print("  cycles         :", run.report.cycles)
    print(f"  IPC            : {run.report.ipc:.3f}")
    print("  dcache hit rate:",
          f"{_hit_rate(run.report.counters.get('dcache0', {})):.1%}")


def _hit_rate(counters: dict) -> float:
    hits = counters.get("read_hits", 0) + counters.get("write_hits", 0)
    misses = counters.get("read_misses", 0) + counters.get("write_misses", 0)
    return hits / (hits + misses) if hits + misses else 0.0


if __name__ == "__main__":
    main()
