"""Machine-learning style workload: matrix multiply through the OpenCL-like API.

The paper's motivation for Vortex includes machine-learning workloads served
through OpenCL/POCL; this example uses the reproduction's OpenCL-style host
API (Context / Program / KernelLauncher) to run ``sgemm`` and cross-checks
the result against numpy.

Run with::

    python examples/opencl_sgemm.py
"""

from __future__ import annotations

import numpy as np

from repro import VortexConfig
from repro.runtime.opencl import Context, Program


def main(n: int = 16) -> None:
    # A 2-core device to show multi-core execution through the same API.
    ctx = Context(VortexConfig(num_cores=2), driver="simx")
    program = Program(ctx, ["sgemm"])
    sgemm = program.kernel("sgemm")

    rng = np.random.default_rng(0)
    a = rng.random((n, n), dtype=np.float32)
    b = rng.random((n, n), dtype=np.float32)

    buf_a = ctx.buffer_from(a)
    buf_b = ctx.buffer_from(b)
    buf_c = ctx.buffer(n * n * 4)

    # Argument order follows the kernel ABI: N, A, B, C; the ND-range size is
    # one work item per output element.
    report = sgemm.set_args(n, buf_a, buf_b, buf_c).enqueue(global_size=n * n)

    device_result = buf_c.read(np.float32, n * n).reshape(n, n)
    host_result = a @ b
    max_error = float(np.max(np.abs(device_result - host_result)))

    print(f"sgemm {n}x{n} on 2 cores")
    print("  max |device - numpy| :", f"{max_error:.2e}")
    print("  cycles               :", report.cycles)
    print(f"  IPC                  : {report.ipc:.3f}")
    gflops = (2 * n**3) / report.cycles if report.cycles else 0.0
    print(f"  flops per cycle      : {gflops:.3f}")


if __name__ == "__main__":
    main()
