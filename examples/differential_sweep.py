"""Differential design-space sweep: every counter, both timing engines.

The Fig 14/19/20 differential tests used to pin a handful of fixed design
points; ``Session.run_differential`` turns that check into a reusable
sweep.  This example builds a grid across the Table 3 core design points,
two data-cache port counts and every wavefront-scheduler policy, runs each
job on **both** SIMX execution engines (the per-thread scalar reference and
the vectorized whole-warp lane plans), and diffs cycles, instruction counts
and every per-component performance counter.

Anything but a fully identical report is a bug in the vectorized engine —
the timing model (scheduler, scoreboard, latencies, caches, MSHRs) is
shared, so the engines must agree bit for bit on every configuration.

The sweep is served through the simulation service
(``Session(executor="service")``): the grid fans out across the sharded
worker fleet, and because every job is content-addressed, *re*-running the
sweep is answered from the result cache — the second pass below executes
nothing and returns bit-identical reports.

Run with::

    PYTHONPATH=src python examples/differential_sweep.py
"""

from __future__ import annotations

from repro import KernelJob, Session, VortexConfig
from repro.common.config import CORE_DESIGN_POINTS, SCHEDULER_POLICIES, MemoryConfig
from repro.service import ServiceConfig


def build_jobs() -> list:
    """The differential grid: design points x ports x scheduler policies x hierarchy."""
    jobs = []
    base = VortexConfig(memory=MemoryConfig(latency=100, bandwidth=1))
    for label, (warps, threads) in CORE_DESIGN_POINTS.items():
        jobs.append(
            KernelJob(
                kernel="sgemm",
                config=base.with_warps_threads(warps, threads),
                size=8 * 8,
                label=f"sgemm/{label}",
            )
        )
    for ports in (2, 4):
        jobs.append(
            KernelJob(
                kernel="sfilter",
                config=base.with_dcache_ports(ports),
                size=8 * 8,
                label=f"sfilter/{ports}port",
            )
        )
    for policy in SCHEDULER_POLICIES:
        jobs.append(
            KernelJob(
                kernel="bfs",
                config=base.with_scheduler_policy(policy),
                size=64,
                label=f"bfs/{policy}",
            )
        )
    for label, (enable_l2, enable_l3) in {
        "l2": (True, False),
        "l2+l3": (True, True),
    }.items():
        jobs.append(
            KernelJob(
                kernel="sgemm",
                config=base.with_cache_hierarchy(enable_l2=enable_l2, enable_l3=enable_l3),
                size=8 * 8,
                label=f"sgemm/{label}",
            )
        )
    return jobs


def main() -> None:
    with Session(
        executor="service", service_config=ServiceConfig(num_shards=4)
    ) as session:
        report = session.run_differential(build_jobs())
        print(report.summary())
        print()
        print(f"{'job':24s} {'cycles':>8s} {'IPC':>7s}  agreement")
        for result in report.results:
            assert result.ok, (
                f"{result.describe()}: {result.scalar.error or result.vector.error}"
            )
            vector = result.vector.report
            status = "identical" if result.identical_counters else "MISMATCH"
            print(f"{result.describe():24s} {vector.cycles:8d} {vector.ipc:7.3f}  {status}")
            for mismatch in result.mismatches:
                print(f"  - {mismatch}")
        if not report.identical_counters:
            raise SystemExit("differential sweep found diverging counters")
        print()
        print("every counter identical across both engines on the whole grid")

        # Replay: the identical grid resubmitted to the same service fleet is
        # answered entirely from the content-addressed result cache.
        replay = session.run_differential(build_jobs())
        stats = session.service_client().stats()
        served = sum(
            result.scalar.cached + result.vector.cached for result in replay.results
        )
        assert replay.identical_counters
        print(
            f"replay: {served}/{2 * len(replay.results)} runs served from cache "
            f"in {replay.wall_seconds:.3f}s "
            f"(hit rate {stats['cache']['hit_rate']:.0%}, "
            f"{stats['executed']} total executions for {stats['submitted']} submissions)"
        )


if __name__ == "__main__":
    main()
