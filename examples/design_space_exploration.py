"""Design-space exploration: IPC vs area across core configurations.

Section 6.5 of the paper positions Vortex as a platform for architecture
research: the SIMX cycle-level simulator explores configurations that do not
fit on the FPGA while the synthesis model prices them.  This example sweeps
the Table 3 warp/thread design points plus two memory configurations, runs
``sgemm`` on each, and reports performance alongside the modeled FPGA cost —
the performance-per-area trade-off the paper uses to pick 4W-4T.

The whole sweep is one batched :class:`repro.Session` run: every
(configuration, memory latency) point becomes a job and the jobs execute
concurrently on a worker pool.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import KernelJob, Session, VortexConfig
from repro.common.config import CORE_DESIGN_POINTS, MemoryConfig
from repro.synthesis import CoreSynthesisModel


def build_jobs() -> list:
    """One sgemm job per (design point, memory latency) combination."""
    jobs = []
    for label, (warps, threads) in CORE_DESIGN_POINTS.items():
        for latency in (50, 200):
            config = VortexConfig(
                memory=MemoryConfig(latency=latency, bandwidth=1)
            ).with_warps_threads(warps, threads)
            jobs.append(
                KernelJob(
                    kernel="sgemm",
                    config=config,
                    driver="simx",
                    size=12 * 12,
                    label=f"{label}@{latency}",
                )
            )
    return jobs


def main() -> None:
    session = Session()
    batch = session.run_batch(build_jobs())
    print(batch.summary())
    print()
    print(f"{'config':8s} {'mem lat':>8s} {'cycles':>8s} {'IPC':>6s} {'LUT':>8s} "
          f"{'fmax':>6s} {'IPC/kLUT':>9s}")
    best = None
    area_model = CoreSynthesisModel()
    point_names = {geometry: name for name, geometry in CORE_DESIGN_POINTS.items()}
    for result in batch.results:
        assert result.ok, f"{result.job.describe()}: {result.error}"
        config = result.job.config
        label = point_names[(config.num_warps, config.num_threads)]
        latency = config.memory.latency
        area = area_model.estimate(config.num_warps, config.num_threads)
        ipc = result.report.ipc
        ipc_per_klut = ipc / (area["lut"] / 1000.0)
        print(
            f"{label:8s} {latency:8d} {result.report.cycles:8d} {ipc:6.2f} "
            f"{area['lut']:8.0f} {area['fmax']:6.0f} {ipc_per_klut:9.3f}"
        )
        if best is None or ipc_per_klut > best[2]:
            best = (label, latency, ipc_per_klut)
    label, latency, score = best
    print()
    print(f"best performance per area: {label} at memory latency {latency} "
          f"({score:.3f} IPC per kLUT)")


if __name__ == "__main__":
    main()
