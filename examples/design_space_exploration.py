"""Design-space exploration: IPC vs area across core configurations.

Section 6.5 of the paper positions Vortex as a platform for architecture
research: the SIMX cycle-level simulator explores configurations that do not
fit on the FPGA while the synthesis model prices them.  This example sweeps
the Table 3 warp/thread design points plus two memory configurations, runs
``sgemm`` on each, and reports performance alongside the modeled FPGA cost —
the performance-per-area trade-off the paper uses to pick 4W-4T.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import VortexConfig, VortexDevice
from repro.common.config import CORE_DESIGN_POINTS, MemoryConfig
from repro.kernels import SgemmKernel
from repro.synthesis import CoreSynthesisModel


def evaluate(num_warps: int, num_threads: int, latency: int) -> dict:
    """Run sgemm on one configuration and return performance + area."""
    config = VortexConfig(memory=MemoryConfig(latency=latency, bandwidth=1)).with_warps_threads(
        num_warps, num_threads
    )
    device = VortexDevice(config, driver="simx")
    run = SgemmKernel().run(device, size=12 * 12)
    assert run.passed
    area = CoreSynthesisModel().estimate(num_warps, num_threads)
    return {
        "ipc": run.report.ipc,
        "cycles": run.report.cycles,
        "lut": area["lut"],
        "fmax": area["fmax"],
        "ipc_per_klut": run.report.ipc / (area["lut"] / 1000.0),
    }


def main() -> None:
    print(f"{'config':8s} {'mem lat':>8s} {'cycles':>8s} {'IPC':>6s} {'LUT':>8s} "
          f"{'fmax':>6s} {'IPC/kLUT':>9s}")
    best = None
    for label, (warps, threads) in CORE_DESIGN_POINTS.items():
        for latency in (50, 200):
            result = evaluate(warps, threads, latency)
            print(
                f"{label:8s} {latency:8d} {result['cycles']:8d} {result['ipc']:6.2f} "
                f"{result['lut']:8.0f} {result['fmax']:6.0f} {result['ipc_per_klut']:9.3f}"
            )
            key = (label, latency)
            if best is None or result["ipc_per_klut"] > best[1]["ipc_per_klut"]:
                best = (key, result)
    label, latency = best[0]
    print()
    print(f"best performance per area: {label} at memory latency {latency} "
          f"({best[1]['ipc_per_klut']:.3f} IPC per kLUT)")


if __name__ == "__main__":
    main()
